/**
 * @file
 * Unified command-line flag registry for the visa-* tools. Each tool
 * used to hand-roll its own argv loop, so shared flags (--trace,
 * --stats-json, --threads, --debug) drifted in spelling, defaults and
 * error behavior; CliParser centralizes registration, usage text, and
 * the unknown-flag error (which lists every registered flag), and the
 * helper classes below bundle the shared flag groups with their
 * post-parse application.
 */

#ifndef VISA_SIM_CLI_HH
#define VISA_SIM_CLI_HH

#include <cstdio>
#include <deque>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "sim/trace.hh"

namespace visa
{

/**
 * A declarative argv parser. Register flags (each returns a stable
 * reference the caller reads after parse()), then parse():
 *
 *   CliParser cli("visa-tool");
 *   std::string &freq = cli.flag("--freq", "MHZ", "core clock", "1000");
 *   bool &verbose = cli.boolFlag("--verbose", "chatty output");
 *   cli.parse(argc, argv);
 *
 * parse() handles --help/-h (usage to stdout, exit 0) and rejects
 * unknown dash-arguments fatally after printing the full usage, so a
 * typo always shows the legal flag list.
 */
class CliParser
{
  public:
    /**
     * @param positional_name non-empty to accept one free argument
     *        (e.g. "program.s"); without it, free arguments are fatal.
     */
    explicit CliParser(std::string prog,
                       std::string positional_name = "",
                       std::string positional_help = "");

    /** Register a value flag; @return its value slot (stable). */
    std::string &flag(const std::string &name,
                      const std::string &value_name,
                      const std::string &help, std::string def = "");

    /** Register a boolean flag; @return its slot (stable). */
    bool &boolFlag(const std::string &name, const std::string &help);

    void parse(int argc, char **argv);

    void printUsage(std::FILE *out) const;

    /** The free argument ("" if absent). */
    const std::string &positional() const { return posValue_; }

  private:
    struct Flag
    {
        std::string name;
        std::string valueName;    ///< empty for boolean flags
        std::string help;
        std::string value;
        bool isBool = false;
        bool boolValue = false;
    };

    Flag *find(const std::string &name);

    std::string prog_;
    std::string posName_;
    std::string posHelp_;
    std::string posValue_;
    std::deque<Flag> flags_;    ///< deque: handed-out refs stay valid
};

/**
 * The shared tracing flag group: --trace, --trace-jsonl,
 * --trace-events, --trace-buffer. Construct against the tool's parser
 * before parse(); afterwards makeTracer()/writeOutputs() implement the
 * standard record-then-export cycle.
 */
class TraceFlags
{
  public:
    explicit TraceFlags(CliParser &cli);

    /** True if any trace output was requested. */
    bool requested() const;

    /**
     * Build the tracer the flags describe (buffer size, category
     * mask), or nullptr when no output was requested. Fatal on unknown
     * categories.
     */
    std::unique_ptr<Tracer> makeTracer() const;

    /**
     * Write the requested outputs; call after uninstalling any
     * ScopedTracer. Warns if the ring dropped events.
     */
    void writeOutputs(const Tracer &tracer) const;

  private:
    std::string *trace_;
    std::string *jsonl_;
    std::string *events_;
    std::string *buffer_;
};

/** Register --stats-json; @return the path slot. */
std::string &addStatsJsonFlag(CliParser &cli);

/** Register --threads (worker count for parallel campaigns). */
std::string &addThreadsFlag(CliParser &cli);
/**
 * Apply a parsed --threads value by exporting VISA_THREADS; must run
 * before the first parallelFor (the pool latches the count once).
 * No-op on "".
 */
void applyThreadsFlag(const std::string &value);

/**
 * Register --no-block-cache; @return its slot. The flag disables the
 * functional core's basic-block translation cache process-wide. This
 * layer only registers it: after parse(), the tool applies a true
 * value with ExecCore::setBlockCacheDefault(false) before building any
 * rig (the CLI library sits below the CPU library and cannot call it).
 */
bool &addNoBlockCacheFlag(CliParser &cli);

/**
 * Register --cores (simulated chip width); @return its slot. Shared by
 * every tool that can build a multi-core chip (visa-sim, visa-fuzz,
 * visa-prof, bench-report) so the spelling and bounds cannot drift.
 */
std::string &addCoresFlag(CliParser &cli);
/** Parse a --cores value ("" = 1); fatal outside [1, 64]. */
int parseCoresFlag(const std::string &value);

/** Register --affinity (per-task core pins); @return its slot. */
std::string &addAffinityFlag(CliParser &cli);
/**
 * Parse an --affinity list "0,1,-1,0" (task index -> core id; -1 lets
 * the scheduler place the task). "" parses to an empty vector.
 */
std::vector<int> parseAffinityFlag(const std::string &value);
/**
 * Cross-check parsed --affinity pins against the parsed --cores count:
 * fatal (naming the task and the offending core id) if any pin
 * references a core the chip does not have.
 */
void validateAffinity(const std::vector<int> &pins, int cores);

/** Register --debug (help|flag[,flag...]). */
std::string &addDebugFlag(CliParser &cli);
/**
 * Apply a parsed --debug value: "help"/"list" prints the known flags
 * and exits 0; otherwise enables each named flag, fatally rejecting
 * unknown ones against the printed list. No-op on "".
 */
void applyDebugFlag(const std::string &value);

/** Open @p path for writing ("-" = stdout) and pass the stream on. */
void withOutputStream(const std::string &path,
                      const std::function<void(std::ostream &)> &fn);

} // namespace visa

#endif // VISA_SIM_CLI_HH
