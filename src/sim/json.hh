/**
 * @file
 * A minimal recursive-descent JSON parser shared by the reporting
 * tools (visa-trace, visa-prof). The documents it reads are machine-
 * written by this repository, so the parser favors smallness over
 * diagnostics; it still rejects malformed input (the validators
 * depend on that).
 */

#ifndef VISA_SIM_JSON_HH
#define VISA_SIM_JSON_HH

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace visa::json
{

struct Value
{
    enum class Type { Null, Bool, Number, String, Array, Object };
    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Value> array;
    std::vector<std::pair<std::string, Value>> object;

    const Value *
    find(const std::string &key) const
    {
        for (const auto &[k, v] : object)
            if (k == key)
                return &v;
        return nullptr;
    }

    /** find() that fatals when @p key is absent (required fields). */
    const Value &at(const std::string &key) const;
};

class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    /** Parse one complete value; fatal on malformed input. */
    Value parse();

  private:
    [[noreturn]] void fail(const char *what) const;
    void skipSpace();
    char peek();
    void expect(char c);
    bool consume(char c);
    Value parseValue();
    Value parseObject();
    Value parseArray();
    Value parseString();
    Value parseBool();
    Value parseNull();
    Value parseNumber();

    std::string_view text_;
    std::size_t pos_ = 0;
};

/** Parse the whole of file @p path; fatal on I/O or parse errors. */
Value parseFile(const std::string &path);

} // namespace visa::json

#endif // VISA_SIM_JSON_HH
