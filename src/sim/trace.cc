#include "sim/trace.hh"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "sim/logging.hh"

namespace visa
{

namespace
{

/**
 * Indexed by EventKind. The names are a stable wire format: the golden
 * JSONL tests, the visa-trace analyzer, and the schema validator all
 * key off them — renaming is a breaking change.
 */
constexpr EventKindInfo kindTable[numEventKinds] = {
    {"task_begin", "task", {"task", "fspec_mhz", "frec_mhz", "deadline_s"}},
    {"task_end", "task",
     {"task", "deadline_met", "missed_checkpoint", "completion_s"}},
    {"checkpoint_arm", "checkpoint",
     {"checkpoints", "first_increment", nullptr, nullptr}},
    {"checkpoint_hit", "checkpoint",
     {"subtask", "aet_cycles", "pet_cycles", "slack_cycles"}},
    {"checkpoint_miss", "checkpoint", {"subtask", "task", nullptr, nullptr}},
    {"watchdog_fire", "checkpoint", {"subtask", nullptr, nullptr, nullptr}},
    {"simple_mode_enter", "mode", {nullptr, nullptr, nullptr, nullptr}},
    {"simple_mode_exit", "mode", {nullptr, nullptr, nullptr, nullptr}},
    {"mode_switch_drain", "mode",
     {"drain_cycles", nullptr, nullptr, nullptr}},
    {"freq_decision", "dvs",
     {"fspec_mhz", "frec_mhz", "speculating", "pet_total_s"}},
    {"freq_change", "dvs", {"from_mhz", "to_mhz", nullptr, nullptr}},
    {"fetch", "cpu", {"pc", "seq", nullptr, nullptr}},
    {"retire", "cpu", {"pc", "seq", nullptr, nullptr}},
    {"squash", "cpu", {"seq", nullptr, nullptr, nullptr}},
    {"branch_mispredict", "cpu", {"pc", "seq", "taken", nullptr}},
    {"icache_miss", "mem", {"pc", nullptr, nullptr, nullptr}},
    {"dcache_miss", "mem", {"addr", "pc", nullptr, nullptr}},
    {"mshr_occupancy", "mem", {"outstanding", nullptr, nullptr, nullptr}},
    {"sched_release", "sched", {"task", "job", nullptr, "wall_s"}},
    {"sched_dispatch", "sched", {"task", "job", "core_mhz", "wall_s"}},
    {"sched_preempt", "sched", {"task", "job", "by_task", "wall_s"}},
    {"sched_complete", "sched",
     {"task", "job", "deadline_met", "wall_s"}},
    {"sched_recovery", "sched", {"task", "subtask", nullptr, "wall_s"}},
    {"fault_inject", "fault", {"class", "pc", "seq", nullptr}},
    {"fault_detect", "fault",
     {"detector", "class", "latency_cycles", nullptr}},
    {"recovery_restart", "fault",
     {"subtask", "restore_cycles", "pages", nullptr}},
};

/** Perfetto track (tid) per category, in kindTable category order. */
int
trackOf(const char *category)
{
    constexpr const char *tracks[] = {"task", "checkpoint", "mode",
                                      "dvs",  "cpu",        "mem",
                                      "sched", "fault"};
    for (int i = 0; i < 8; ++i)
        if (std::string_view(category) == tracks[i])
            return i;
    return 0;
}

/** Print a double as a JSON number (non-finite values become 0). */
void
printJsonDouble(std::ostream &os, double v)
{
    if (!std::isfinite(v))
        v = 0.0;
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    os << buf;
}

/** Print one named argument; integers stay integers, d is a double. */
void
printArg(std::ostream &os, const char *name, const TraceEvent &e, int slot)
{
    os << '"' << name << "\":";
    if (slot == 3) {
        printJsonDouble(os, e.d);
        return;
    }
    const std::uint64_t v = slot == 0 ? e.a : slot == 1 ? e.b : e.c;
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    os << buf;
}

} // anonymous namespace

const EventKindInfo &
eventKindInfo(EventKind kind)
{
    return kindTable[static_cast<int>(kind)];
}

Tracer::Tracer(std::size_t capacity)
    : ring_(capacity ? capacity : 1)
{
}

std::uint32_t
Tracer::maskFor(std::string_view category)
{
    if (category == "all")
        return allKinds();
    std::uint32_t mask = 0;
    for (int k = 0; k < numEventKinds; ++k)
        if (category == kindTable[k].category)
            mask |= 1u << k;
    return mask;
}

void
Tracer::clear()
{
    wr_ = 0;
    count_ = 0;
    dropped_ = 0;
}

void
Tracer::mergeInto(Tracer &dst, std::vector<Tracer> &perCore)
{
    // K-way merge keyed by (cycle, source order): each source ring is
    // one core's chronological stream, and the source vector is in
    // core-id order, so ties between cores at the same cycle resolve
    // to the lower core id — the exact order a serial interleaving in
    // ascending core order would have produced.
    std::vector<std::size_t> idx(perCore.size(), 0);
    for (;;) {
        int pick = -1;
        Cycles pickCycle = 0;
        for (std::size_t c = 0; c < perCore.size(); ++c) {
            if (idx[c] >= perCore[c].size())
                continue;
            const Cycles cyc = perCore[c].at(idx[c]).cycle;
            if (pick < 0 || cyc < pickCycle) {
                pick = static_cast<int>(c);
                pickCycle = cyc;
            }
        }
        if (pick < 0)
            break;
        Tracer &src = perCore[static_cast<std::size_t>(pick)];
        dst.append(src.at(idx[static_cast<std::size_t>(pick)]));
        ++idx[static_cast<std::size_t>(pick)];
    }
    for (Tracer &src : perCore) {
        // Source drops are destination drops: the merged ring lost
        // those events just as surely as its own wraparound would
        // have, and the overflow warning must still fire.
        dst.dropped_ += src.dropped();
        src.clear();
    }
}

void
Tracer::writeJsonl(std::ostream &os) const
{
    // Schema header (v3). Event lines gain "core" only on multi-core
    // chips, so single-core bodies stay byte-identical to v2.
    os << "{\"schema\":" << traceSchemaVersion << "}\n";
    for (std::size_t i = 0; i < count_; ++i) {
        const TraceEvent &e = at(i);
        const EventKindInfo &info = eventKindInfo(e.kind);
        os << "{\"ev\":\"" << info.name << "\",\"cat\":\""
           << info.category << "\",\"cycle\":" << e.cycle;
        if (e.core >= 0)
            os << ",\"core\":" << e.core;
        for (int slot = 0; slot < 4; ++slot) {
            if (!info.args[slot])
                continue;
            os << ',';
            printArg(os, info.args[slot], e, slot);
        }
        os << "}\n";
    }
}

void
Tracer::writeChromeTrace(std::ostream &os) const
{
    os << "{\"schema\":" << traceSchemaVersion << ",\"traceEvents\":[\n";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };

    // Name the per-category tracks.
    constexpr const char *tracks[] = {"runtime/task", "runtime/checkpoint",
                                      "mode",         "dvs",
                                      "cpu",          "mem",
                                      "sched",        "fault"};
    for (int t = 0; t < 8; ++t) {
        sep();
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":"
           << t << ",\"args\":{\"name\":\"" << tracks[t] << "\"}}";
    }

    for (std::size_t i = 0; i < count_; ++i) {
        const TraceEvent &e = at(i);
        const EventKindInfo &info = eventKindInfo(e.kind);
        const int tid = trackOf(info.category);

        // Counter tracks: MSHR occupancy and the DVS clock.
        if (e.kind == EventKind::MshrOccupancy) {
            sep();
            os << "{\"name\":\"mshr_outstanding\",\"ph\":\"C\",\"ts\":"
               << e.cycle << ",\"pid\":0,\"args\":{\"outstanding\":"
               << e.a << "}}";
            continue;
        }
        if (e.kind == EventKind::FreqChange) {
            sep();
            os << "{\"name\":\"frequency_mhz\",\"ph\":\"C\",\"ts\":"
               << e.cycle << ",\"pid\":0,\"args\":{\"mhz\":" << e.b
               << "}}";
            // fall through to the instant event as well (keeps
            // from/to visible when inspecting the dvs track)
        }

        // The simple mode renders as a duration slice.
        const char *ph = "i";
        if (e.kind == EventKind::SimpleModeEnter)
            ph = "B";
        else if (e.kind == EventKind::SimpleModeExit)
            ph = "E";

        sep();
        // Multi-core events group into one Perfetto process per core.
        os << "{\"name\":\"" << info.name << "\",\"cat\":\""
           << info.category << "\",\"ph\":\"" << ph
           << "\",\"ts\":" << e.cycle << ",\"pid\":"
           << (e.core >= 0 ? int(e.core) : 0) << ",\"tid\":" << tid;
        if (ph[0] == 'i')
            os << ",\"s\":\"t\"";
        bool has_args = false;
        for (int slot = 0; slot < 4; ++slot)
            if (info.args[slot])
                has_args = true;
        if (has_args) {
            os << ",\"args\":{";
            bool first_arg = true;
            for (int slot = 0; slot < 4; ++slot) {
                if (!info.args[slot])
                    continue;
                if (!first_arg)
                    os << ',';
                first_arg = false;
                printArg(os, info.args[slot], e, slot);
            }
            os << '}';
        }
        os << '}';
    }
    os << "\n],\"displayTimeUnit\":\"ns\",\"otherData\":{"
          "\"clock\":\"cycles\",\"dropped_events\":"
       << dropped_ << "}}\n";
}

namespace detail
{
thread_local Tracer *tlsTracer = nullptr;
} // namespace detail

Tracer *
installTracer(Tracer *tracer)
{
    Tracer *prev = detail::tlsTracer;
    detail::tlsTracer = tracer;
    return prev;
}

} // namespace visa
