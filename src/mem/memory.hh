/**
 * @file
 * Sparse byte-addressable main memory (functional storage only; timing
 * lives in MemController and the caches).
 */

#ifndef VISA_MEM_MEMORY_HH
#define VISA_MEM_MEMORY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "isa/program.hh"
#include "sim/types.hh"

namespace visa
{

/** Little-endian sparse memory backed by 4 KB pages. */
class MainMemory
{
  public:
    /** Read @p bytes (1, 2, 4, or 8) starting at @p addr. */
    std::uint64_t read(Addr addr, int bytes) const;

    /** Write the low @p bytes of @p value starting at @p addr. */
    void write(Addr addr, std::uint64_t value, int bytes);

    Word readWord(Addr addr) const
    {
        return static_cast<Word>(read(addr, 4));
    }
    void writeWord(Addr addr, Word v) { write(addr, v, 4); }

    double readDouble(Addr addr) const;
    void writeDouble(Addr addr, double v);

    /** Copy a program's text and initialized data into memory. */
    void loadProgram(const Program &prog);

    /** Drop all contents. */
    void clear() { pages_.clear(); }

  private:
    static constexpr Addr pageBits = 12;
    static constexpr Addr pageSize = 1u << pageBits;
    static constexpr Addr pageMask = pageSize - 1;

    using Page = std::array<std::uint8_t, pageSize>;

    std::uint8_t readByte(Addr a) const;
    void writeByte(Addr a, std::uint8_t v);

    mutable std::unordered_map<Addr, std::unique_ptr<Page>> pages_;
};

} // namespace visa

#endif // VISA_MEM_MEMORY_HH
