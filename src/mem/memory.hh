/**
 * @file
 * Sparse byte-addressable main memory (functional storage only; timing
 * lives in MemController and the caches).
 *
 * This is the hottest data structure in the simulator: both pipelines
 * funnel every simulated load/store through it. The design is therefore
 * two-level: an inline fast path that serves accesses out of the
 * last-touched page with a single memcpy (no hash probe at all when the
 * page repeats, one probe when it changes), and an out-of-line slow
 * path for page-straddling accesses and absent pages.
 */

#ifndef VISA_MEM_MEMORY_HH
#define VISA_MEM_MEMORY_HH

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "isa/program.hh"
#include "sim/types.hh"

namespace visa
{

/** Little-endian sparse memory backed by 4 KB pages. */
class MainMemory
{
  public:
    /** Read @p bytes (1, 2, 4, or 8) starting at @p addr. */
    std::uint64_t
    read(Addr addr, int bytes) const
    {
        const Addr off = addr & pageMask;
        if ((addr >> pageBits) == cachedIdx_ &&
            off + static_cast<Addr>(bytes) <= pageSize) [[likely]]
            return loadLe(cachedPage_->data() + off, bytes);
        return readSlow(addr, bytes);
    }

    /** Write the low @p bytes of @p value starting at @p addr. */
    void
    write(Addr addr, std::uint64_t value, int bytes)
    {
        if (addr + static_cast<Addr>(bytes) > codeBase_ &&
            addr < codeEnd_) [[unlikely]]
            noteCodeWrite(addr, static_cast<Addr>(bytes));
        const Addr off = addr & pageMask;
        if ((addr >> pageBits) == cachedIdx_ &&
            off + static_cast<Addr>(bytes) <= pageSize) [[likely]] {
            storeLe(cachedPage_->data() + off, value, bytes);
            return;
        }
        writeSlow(addr, value, bytes);
    }

    Word readWord(Addr addr) const
    {
        return static_cast<Word>(read(addr, 4));
    }
    void writeWord(Addr addr, Word v) { write(addr, v, 4); }

    double
    readDouble(Addr addr) const
    {
        std::uint64_t bits = read(addr, 8);
        double d;
        std::memcpy(&d, &bits, 8);
        return d;
    }

    void
    writeDouble(Addr addr, double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, 8);
        write(addr, bits, 8);
    }

    /**
     * Copy @p n raw bytes starting at @p addr into @p dst, splitting
     * only at page boundaries; absent pages read as zero.
     */
    void readBytes(Addr addr, void *dst, std::size_t n) const;

    /**
     * Copy @p n raw bytes from @p src into memory starting at @p addr,
     * splitting only at page boundaries (pages are created as needed).
     */
    void writeBytes(Addr addr, const void *src, std::size_t n);

    /**
     * Copy a program's text and initialized data into memory. All
     * touched pages are materialized up front so the simulation's
     * first accesses already hit the page cache.
     */
    void loadProgram(const Program &prog);

    /** Page size of the flat-page table, bytes. */
    static constexpr Addr pageBytes() { return pageSize; }

    /**
     * Register [base, base+bytes) as executable code so stores into it
     * are flagged for the pre-decoded block caches. Called by
     * loadProgram before it writes the text image (the load itself
     * bumps the counters, which a resync then observes as a no-op word
     * diff). Re-registration extends the tracked range to the union.
     */
    void setCodeRange(Addr base, Addr bytes);

    /** Total stores that touched the registered code range. */
    std::uint64_t codeWriteCount() const { return codeWriteCount_; }

    /**
     * Monotonic write-generation of the code page containing @p a
     * (0 when @p a is outside the registered range).
     */
    std::uint64_t
    codePageGen(Addr a) const
    {
        if (a - codeBase_ >= codeEnd_ - codeBase_)
            return 0;
        return codePageGens_[(a >> pageBits) - (codeBase_ >> pageBits)];
    }

    /**
     * Base addresses of every materialized (dirty) page, ascending.
     * Pages are created by writes and by loadProgram, so this is the
     * set the differential checker must diff; untouched pages read as
     * zero on both rigs by construction.
     */
    std::vector<Addr> pageBases() const;

    /**
     * @return the raw bytes of the materialized page containing
     * @p addr (pageBytes() of them), or nullptr if the page is absent
     * (i.e. reads as zeros). Does not materialize the page.
     */
    const std::uint8_t *peekPage(Addr addr) const;

    /** Drop all contents. */
    void
    clear()
    {
        pages_.clear();
        cachedIdx_ = noPage;
        cachedPage_ = nullptr;
    }

  private:
    static constexpr Addr pageBits = 12;
    static constexpr Addr pageSize = 1u << pageBits;
    static constexpr Addr pageMask = pageSize - 1;
    /** Page-index value that can never match a real address. */
    static constexpr Addr noPage = ~static_cast<Addr>(0);

    using Page = std::array<std::uint8_t, pageSize>;

    /** Assemble up to 8 little-endian bytes into a value. */
    static std::uint64_t
    loadLe(const std::uint8_t *p, int bytes)
    {
        if constexpr (std::endian::native == std::endian::little) {
            std::uint64_t v = 0;
            std::memcpy(&v, p, static_cast<std::size_t>(bytes));
            return v;
        } else {
            std::uint64_t v = 0;
            for (int i = 0; i < bytes; ++i)
                v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
            return v;
        }
    }

    /** Scatter the low bytes of @p v little-endian first. */
    static void
    storeLe(std::uint8_t *p, std::uint64_t v, int bytes)
    {
        if constexpr (std::endian::native == std::endian::little) {
            std::memcpy(p, &v, static_cast<std::size_t>(bytes));
        } else {
            for (int i = 0; i < bytes; ++i)
                p[i] = static_cast<std::uint8_t>(v >> (8 * i));
        }
    }

    /** @return the page holding @p a, or nullptr; caches a hit. */
    Page *findPage(Addr a) const;
    /** @return the page holding @p a, creating it if absent; caches. */
    Page *touchPage(Addr a);

    std::uint64_t readSlow(Addr addr, int bytes) const;
    void writeSlow(Addr addr, std::uint64_t value, int bytes);

    /** Bump generation counters for a store into the code range. */
    void noteCodeWrite(Addr addr, Addr bytes);

    std::uint8_t readByte(Addr a) const;
    void writeByte(Addr a, std::uint8_t v);

    mutable std::unordered_map<Addr, std::unique_ptr<Page>> pages_;
    /** One-entry page cache: index and pointer of the last-hit page. */
    mutable Addr cachedIdx_ = noPage;
    mutable Page *cachedPage_ = nullptr;

    /** Registered executable range; empty (0, 0) until loadProgram. */
    Addr codeBase_ = 0;
    Addr codeEnd_ = 0;
    std::uint64_t codeWriteCount_ = 0;
    /** Per-code-page write generations, indexed from codeBase_'s page. */
    std::vector<std::uint64_t> codePageGens_;
};

} // namespace visa

#endif // VISA_MEM_MEMORY_HH
