#include "mem/memory.hh"

#include <cstring>

#include "sim/logging.hh"

namespace visa
{

std::uint8_t
MainMemory::readByte(Addr a) const
{
    auto it = pages_.find(a >> pageBits);
    if (it == pages_.end())
        return 0;
    return (*it->second)[a & pageMask];
}

void
MainMemory::writeByte(Addr a, std::uint8_t v)
{
    auto &page = pages_[a >> pageBits];
    if (!page) {
        page = std::make_unique<Page>();
        page->fill(0);
    }
    (*page)[a & pageMask] = v;
}

std::uint64_t
MainMemory::read(Addr addr, int bytes) const
{
    std::uint64_t v = 0;
    for (int i = 0; i < bytes; ++i)
        v |= static_cast<std::uint64_t>(readByte(addr + i)) << (8 * i);
    return v;
}

void
MainMemory::write(Addr addr, std::uint64_t value, int bytes)
{
    for (int i = 0; i < bytes; ++i)
        writeByte(addr + i, static_cast<std::uint8_t>(value >> (8 * i)));
}

double
MainMemory::readDouble(Addr addr) const
{
    std::uint64_t bits = read(addr, 8);
    double d;
    std::memcpy(&d, &bits, 8);
    return d;
}

void
MainMemory::writeDouble(Addr addr, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    write(addr, bits, 8);
}

void
MainMemory::loadProgram(const Program &prog)
{
    for (std::size_t i = 0; i < prog.words.size(); ++i)
        writeWord(prog.textBase + static_cast<Addr>(i * 4), prog.words[i]);
    for (std::size_t i = 0; i < prog.data.size(); ++i)
        writeByte(prog.dataBase + static_cast<Addr>(i), prog.data[i]);
}

} // namespace visa
