#include "mem/memory.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"

namespace visa
{

MainMemory::Page *
MainMemory::findPage(Addr a) const
{
    const Addr idx = a >> pageBits;
    if (idx == cachedIdx_)
        return cachedPage_;
    auto it = pages_.find(idx);
    if (it == pages_.end())
        return nullptr;
    cachedIdx_ = idx;
    cachedPage_ = it->second.get();
    return cachedPage_;
}

MainMemory::Page *
MainMemory::touchPage(Addr a)
{
    const Addr idx = a >> pageBits;
    if (idx == cachedIdx_)
        return cachedPage_;
    auto &page = pages_[idx];
    if (!page) {
        page = std::make_unique<Page>();
        page->fill(0);
    }
    cachedIdx_ = idx;
    cachedPage_ = page.get();
    return cachedPage_;
}

std::uint8_t
MainMemory::readByte(Addr a) const
{
    const Page *page = findPage(a);
    return page ? (*page)[a & pageMask] : 0;
}

void
MainMemory::writeByte(Addr a, std::uint8_t v)
{
    (*touchPage(a))[a & pageMask] = v;
}

std::uint64_t
MainMemory::readSlow(Addr addr, int bytes) const
{
    const Addr off = addr & pageMask;
    if (off + static_cast<Addr>(bytes) <= pageSize) {
        // Same page, just not the cached one (or absent).
        const Page *page = findPage(addr);
        return page ? loadLe(page->data() + off, bytes) : 0;
    }
    // Page-straddling access: compose the two halves.
    std::uint64_t v = 0;
    for (int i = 0; i < bytes; ++i)
        v |= static_cast<std::uint64_t>(readByte(addr + static_cast<Addr>(i)))
             << (8 * i);
    return v;
}

void
MainMemory::writeSlow(Addr addr, std::uint64_t value, int bytes)
{
    const Addr off = addr & pageMask;
    if (off + static_cast<Addr>(bytes) <= pageSize) {
        storeLe(touchPage(addr)->data() + off, value, bytes);
        return;
    }
    for (int i = 0; i < bytes; ++i)
        writeByte(addr + static_cast<Addr>(i),
                  static_cast<std::uint8_t>(value >> (8 * i)));
}

void
MainMemory::readBytes(Addr addr, void *dst, std::size_t n) const
{
    auto *out = static_cast<std::uint8_t *>(dst);
    while (n > 0) {
        const Addr off = addr & pageMask;
        const std::size_t chunk =
            std::min<std::size_t>(n, pageSize - off);
        const Page *page = findPage(addr);
        if (page)
            std::memcpy(out, page->data() + off, chunk);
        else
            std::memset(out, 0, chunk);
        out += chunk;
        addr += static_cast<Addr>(chunk);
        n -= chunk;
    }
}

void
MainMemory::setCodeRange(Addr base, Addr bytes)
{
    const Addr end = base + bytes;
    if (codeEnd_ > codeBase_) {    // union with the existing range
        base = std::min(base, codeBase_);
        bytes = std::max(end, codeEnd_) - base;
    }
    const Addr first_page = base >> pageBits;
    const Addr last_page = (base + bytes - 1) >> pageBits;
    std::vector<std::uint64_t> gens(last_page - first_page + 1, 0);
    if (codeEnd_ > codeBase_) {
        // Preserve existing counters at their (possibly shifted) slots.
        const Addr old_first = codeBase_ >> pageBits;
        for (std::size_t i = 0; i < codePageGens_.size(); ++i)
            gens[old_first - first_page + i] = codePageGens_[i];
    }
    codePageGens_ = std::move(gens);
    codeBase_ = base;
    codeEnd_ = base + bytes;
}

void
MainMemory::noteCodeWrite(Addr addr, Addr bytes)
{
    const Addr lo = std::max(addr, codeBase_);
    const Addr hi = std::min(addr + bytes, codeEnd_);
    if (lo >= hi)
        return;
    ++codeWriteCount_;
    const Addr first = codeBase_ >> pageBits;
    for (Addr p = lo >> pageBits; p <= (hi - 1) >> pageBits; ++p)
        ++codePageGens_[p - first];
}

void
MainMemory::writeBytes(Addr addr, const void *src, std::size_t n)
{
    if (addr + static_cast<Addr>(n) > codeBase_ && addr < codeEnd_)
        [[unlikely]]
        noteCodeWrite(addr, static_cast<Addr>(n));
    const auto *in = static_cast<const std::uint8_t *>(src);
    while (n > 0) {
        const Addr off = addr & pageMask;
        const std::size_t chunk =
            std::min<std::size_t>(n, pageSize - off);
        std::memcpy(touchPage(addr)->data() + off, in, chunk);
        in += chunk;
        addr += static_cast<Addr>(chunk);
        n -= chunk;
    }
}

std::vector<Addr>
MainMemory::pageBases() const
{
    std::vector<Addr> bases;
    bases.reserve(pages_.size());
    for (const auto &kv : pages_)
        bases.push_back(kv.first << pageBits);
    std::sort(bases.begin(), bases.end());
    return bases;
}

const std::uint8_t *
MainMemory::peekPage(Addr addr) const
{
    auto it = pages_.find(addr >> pageBits);
    return it == pages_.end() ? nullptr : it->second->data();
}

void
MainMemory::loadProgram(const Program &prog)
{
    // Pre-touch every text and data page so the first simulated
    // accesses never pay the map-insert cost mid-run.
    const Addr text_bytes = static_cast<Addr>(prog.words.size() * 4);
    if (text_bytes)
        setCodeRange(prog.textBase, text_bytes);
    for (Addr a = prog.textBase & ~pageMask; a < prog.textBase + text_bytes;
         a += pageSize)
        touchPage(a);
    for (Addr a = prog.dataBase & ~pageMask;
         a < prog.dataBase + static_cast<Addr>(prog.data.size());
         a += pageSize)
        touchPage(a);

    for (std::size_t i = 0; i < prog.words.size(); ++i)
        writeWord(prog.textBase + static_cast<Addr>(i * 4), prog.words[i]);
    if (!prog.data.empty())
        writeBytes(prog.dataBase, prog.data.data(), prog.data.size());
}

} // namespace visa
