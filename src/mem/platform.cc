#include "mem/platform.hh"

#include "sim/logging.hh"
#include "sim/prof/prof.hh"

namespace visa
{

Word
Platform::load(Addr addr) const
{
    switch (addr) {
      case mmio::watchdog:
        return static_cast<Word>(watchdogArmed_ ? watchdog_ : 0);
      case mmio::cycleCounter:
        return static_cast<Word>(cycleCounter_);
      case mmio::currentFreq:
        return curFreq_;
      case mmio::recoveryFreq:
        return recFreq_;
      case mmio::subtaskId:
        return static_cast<Word>(curSubtask_);
      default:
        warn("MMIO load from unmapped 0x%x", addr);
        return 0;
    }
}

void
Platform::store(Addr addr, Word value)
{
    switch (addr) {
      case mmio::watchdog:
        // Stores *add* to the watchdog: the first sub-task's snippet
        // initializes it (add to zero) and later snippets advance the
        // interim deadline to the next checkpoint (paper §2.2).
        watchdog_ += static_cast<std::int32_t>(value);
        watchdogArmed_ = watchdog_ > 0;
        break;
      case mmio::cycleCounter:
        cycleCounter_ = 0;
        break;
      case mmio::subtaskId:
        curSubtask_ = static_cast<int>(value);
        if (onSubtaskBegin)
            onSubtaskBegin(curSubtask_);
        // The checkpoint-register store is the sub-task boundary, so
        // it is also where profiled cycle attribution switches phase.
        if (prof::BlockProfiler *prof = prof::currentProfiler())
            prof->setPhase(curSubtask_);
        break;
      case mmio::aetReport:
        if (onAetReport)
            onAetReport(curSubtask_, value);
        break;
      case mmio::checksum:
        lastChecksum_ = value;
        checksumReported_ = true;
        break;
      case mmio::putChar:
        console_ += static_cast<char>(value & 0xFF);
        break;
      case mmio::currentFreq:
      case mmio::recoveryFreq:
        // Frequency switching is privileged: only the run-time system
        // (host side) changes frequencies in this model.
        warn("guest store to frequency register ignored");
        break;
      default:
        warn("MMIO store to unmapped 0x%x", addr);
    }
}

void
Platform::reset()
{
    watchdog_ = 0;
    watchdogArmed_ = false;
    masked_ = true;
    cycleCounter_ = 0;
    curSubtask_ = 0;
    lastChecksum_ = 0;
    checksumReported_ = false;
    console_.clear();
    expiredWhileMasked_ = 0;
}

} // namespace visa
