/**
 * @file
 * A set-associative, true-LRU cache timing model (Table 1: 64 KB, 4-way,
 * 64 B blocks, 1-cycle hit). Functional data lives in MainMemory; the
 * cache tracks only tags, so fills never move data.
 */

#ifndef VISA_MEM_CACHE_HH
#define VISA_MEM_CACHE_HH

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace visa
{

/** Replacement policies. The VISA contract (Table 1) uses LRU; the
 *  WCET analyzer's persistence argument is only valid for LRU, so the
 *  others exist for microarchitecture studies on the complex side. */
enum class ReplPolicy
{
    Lru,
    Fifo,
    Random,    ///< deterministic LFSR victim selection
};

/** Cache geometry parameters. */
struct CacheParams
{
    std::string name = "cache";
    std::uint32_t sizeBytes = 64 * 1024;
    std::uint32_t assoc = 4;
    std::uint32_t blockBytes = 64;
    ReplPolicy repl = ReplPolicy::Lru;
};

/** Tag-only set-associative LRU cache. */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * Look up @p addr; on a miss the block is filled (allocate on both
     * reads and writes). Inline: this sits on the per-instruction path
     * of both pipelines, and the geometry is power-of-two by
     * construction so the index/tag math is all shifts.
     * @return true on hit.
     */
    bool
    access(Addr addr, bool is_write)
    {
        (void)is_write;    // allocate-on-write: same path as reads
        ++accesses_;
        const std::uint32_t set = setIndex(addr);
        const Addr tag = tagOf(addr);
        Line *ways =
            &lines_[static_cast<std::size_t>(set) * params_.assoc];
        // One-entry MRU filter: sequential fetch and streaming data hit
        // the same block many times in a row, so the common case skips
        // the way scan. Exact: anything that changes a line's tag or
        // valid bit (fill, flush) invalidates the filter, and the hit
        // bookkeeping below is identical to the scan's.
        if (ways == mruWays_ && tag == mruTag_) [[likely]] {
            if (params_.repl == ReplPolicy::Lru)
                mruLine_->lruStamp = ++stamp_;    // FIFO: no refresh
            return true;
        }
        for (std::uint32_t w = 0; w < params_.assoc; ++w) {
            if (ways[w].valid && ways[w].tag == tag) {
                if (params_.repl == ReplPolicy::Lru)
                    ways[w].lruStamp = ++stamp_;
                mruWays_ = ways;
                mruTag_ = tag;
                mruLine_ = &ways[w];
                return true;
            }
        }
        fill(ways, tag);
        return false;
    }

    /** Look up @p addr without changing any state. @return true on hit. */
    bool
    probe(Addr addr) const
    {
        const std::uint32_t set = setIndex(addr);
        const Addr tag = tagOf(addr);
        const Line *ways =
            &lines_[static_cast<std::size_t>(set) * params_.assoc];
        for (std::uint32_t w = 0; w < params_.assoc; ++w)
            if (ways[w].valid && ways[w].tag == tag)
                return true;
        return false;
    }

    /** Invalidate every block (used to induce Fig. 4 mispredictions). */
    void flush();

    std::uint32_t numSets() const { return numSets_; }
    std::uint32_t assoc() const { return params_.assoc; }
    std::uint32_t blockBytes() const { return params_.blockBytes; }
    /** log2(blockBytes); addr >> blockShift() == addr / blockBytes(). */
    std::uint32_t blockShift() const { return blockShift_; }

    /** Block-aligned address -> (set, tag). */
    std::uint32_t setIndex(Addr addr) const
    {
        return static_cast<std::uint32_t>(addr >> blockShift_) &
               (numSets_ - 1);
    }
    Addr tagOf(Addr addr) const
    {
        return addr >> tagShift_;
    }

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t misses() const { return misses_; }
    void
    resetStats()
    {
        accesses_ = 0;
        misses_ = 0;
    }

  private:
    struct Line
    {
        bool valid = false;
        Addr tag = 0;
        std::uint64_t lruStamp = 0;
    };

    /** Pick the victim way in @p ways per the configured policy. */
    Line *victimIn(Line *ways);

    /** Miss path of access(): count the miss and fill the block. */
    void fill(Line *ways, Addr tag);

    CacheParams params_;
    std::uint32_t numSets_;
    std::uint32_t blockShift_ = 0;    ///< log2(blockBytes)
    std::uint32_t tagShift_ = 0;      ///< log2(blockBytes * numSets)
    std::vector<Line> lines_;    ///< numSets_ * assoc, set-major
    /** MRU filter (see access()); cleared by fill() and flush(). */
    Line *mruWays_ = nullptr;    ///< set base of the last hit
    Addr mruTag_ = 0;
    Line *mruLine_ = nullptr;    ///< the hit line within that set
    std::uint64_t stamp_ = 0;
    std::uint32_t lfsr_ = 0xACE1u;
    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace visa

#endif // VISA_MEM_CACHE_HH
