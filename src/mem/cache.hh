/**
 * @file
 * A set-associative, true-LRU cache timing model (Table 1: 64 KB, 4-way,
 * 64 B blocks, 1-cycle hit). Functional data lives in MainMemory; the
 * cache tracks only tags, so fills never move data.
 */

#ifndef VISA_MEM_CACHE_HH
#define VISA_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace visa
{

/** Replacement policies. The VISA contract (Table 1) uses LRU; the
 *  WCET analyzer's persistence argument is only valid for LRU, so the
 *  others exist for microarchitecture studies on the complex side. */
enum class ReplPolicy
{
    Lru,
    Fifo,
    Random,    ///< deterministic LFSR victim selection
};

/** Cache geometry parameters. */
struct CacheParams
{
    std::string name = "cache";
    std::uint32_t sizeBytes = 64 * 1024;
    std::uint32_t assoc = 4;
    std::uint32_t blockBytes = 64;
    ReplPolicy repl = ReplPolicy::Lru;
};

/** Tag-only set-associative LRU cache. */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * Look up @p addr; on a miss the block is filled (allocate on both
     * reads and writes).
     * @return true on hit.
     */
    bool access(Addr addr, bool is_write);

    /** Look up @p addr without changing any state. @return true on hit. */
    bool probe(Addr addr) const;

    /** Invalidate every block (used to induce Fig. 4 mispredictions). */
    void flush();

    std::uint32_t numSets() const { return numSets_; }
    std::uint32_t assoc() const { return params_.assoc; }
    std::uint32_t blockBytes() const { return params_.blockBytes; }

    /** Block-aligned address -> (set, tag). */
    std::uint32_t setIndex(Addr addr) const
    {
        return (addr / params_.blockBytes) & (numSets_ - 1);
    }
    Addr tagOf(Addr addr) const
    {
        return addr / params_.blockBytes / numSets_;
    }

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t misses() const { return misses_; }
    void
    resetStats()
    {
        accesses_ = 0;
        misses_ = 0;
    }

  private:
    struct Line
    {
        bool valid = false;
        Addr tag = 0;
        std::uint64_t lruStamp = 0;
    };

    /** Pick the victim way in @p ways per the configured policy. */
    Line *victimIn(Line *ways);

    CacheParams params_;
    std::uint32_t numSets_;
    std::vector<Line> lines_;    ///< numSets_ * assoc, set-major
    std::uint64_t stamp_ = 0;
    std::uint32_t lfsr_ = 0xACE1u;
    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace visa

#endif // VISA_MEM_CACHE_HH
