/**
 * @file
 * Main-memory timing: a fixed 100 ns access latency (Table 1) plus a
 * channel-occupancy contention model. With a single outstanding request
 * (the VISA, simple-fixed, and simple mode cases) the latency is exactly
 * the worst-case memory stall time; with multiple outstanding requests
 * (complex mode) later requests can be delayed by channel contention,
 * which is exactly why the complex pipeline cannot be bounded by Table 1
 * (paper §3.2).
 */

#ifndef VISA_MEM_MEMCTRL_HH
#define VISA_MEM_MEMCTRL_HH

#include <cstdint>

#include "sim/types.hh"

namespace visa
{

/**
 * Chip-level interconnect seam. A multi-core chip attaches one of
 * these to every core's MemController; complex-mode misses are then
 * routed through the shared banked bus + L2 instead of the core's
 * private channel model. Simple mode and the simple-fixed pipeline
 * keep using the static worst-case penalty (stallCycles): their
 * traffic rides a reserved TDM lane of the bus by construction, so
 * the VISA's Table-1 bound — and every watchdog budget derived from
 * it — survives the move to a shared memory system unchanged.
 */
class ChipBusPort
{
  public:
    virtual ~ChipBusPort() = default;

    /**
     * Route a complex-mode miss from @p core, issued at core-local
     * cycle @p now with the core clocked at @p f, for block address
     * @p addr. @return the core-local cycle the fill completes.
     */
    virtual Cycles route(int core, Cycles now, MHz f, Addr addr) = 0;
};

/** Timing parameters of the memory controller. */
struct MemCtrlParams
{
    /** Worst-case (uncontended) access latency, ns (Table 1). */
    double accessNs = 100.0;
    /** Channel occupancy per request, ns (bandwidth limit). */
    double occupancyNs = 30.0;
    /** Maximum outstanding misses (MSHRs) in complex mode. */
    int maxOutstanding = 8;
};

/** Converts the ns-specified memory timing into cycles at frequency f. */
class MemController
{
  public:
    explicit MemController(const MemCtrlParams &params = {})
        : params_(params)
    {}

    /**
     * Uncontended miss penalty in cycles at @p f MHz: the worst-case
     * memory stall time the VISA is specified with.
     */
    Cycles
    stallCycles(MHz f) const
    {
        // ceil(accessNs * f / 1000)
        auto num = static_cast<Cycles>(params_.accessNs * f);
        return (num + 999) / 1000;
    }

    /** Channel occupancy in cycles at @p f MHz. */
    Cycles
    occupancyCycles(MHz f) const
    {
        auto num = static_cast<Cycles>(params_.occupancyNs * f);
        return (num + 999) / 1000;
    }

    /**
     * Schedule a request issued at absolute cycle @p now with frequency
     * @p f; @return the absolute cycle the fill completes. Applies the
     * channel contention model — or, when this controller is attached
     * to a chip bus (attachBus), the chip's shared banked-bus + L2
     * model, keyed by the miss's block address @p addr. Detached
     * controllers ignore @p addr, so single-core rigs are bit-identical
     * to the historical model.
     */
    Cycles
    schedule(Cycles now, MHz f, Addr addr = 0)
    {
        if (bus_)
            return bus_->route(coreId_, now, f, addr);
        Cycles start = now > channelFree_ ? now : channelFree_;
        channelFree_ = start + occupancyCycles(f);
        return start + stallCycles(f);
    }

    /**
     * Schedule a request with the guarantee that it is the only
     * outstanding one (simple mode / simple-fixed): no contention.
     */
    Cycles
    scheduleExclusive(Cycles now, MHz f) const
    {
        return now + stallCycles(f);
    }

    /** Forget channel state (e.g., across task boundaries). */
    void reset() { channelFree_ = 0; }

    /**
     * Attach this controller's complex-mode miss stream to a chip bus
     * as @p core (detach with nullptr). A multi-core scheduler
     * re-attaches a migrating task's controller with the new core id
     * at dispatch.
     */
    void
    attachBus(ChipBusPort *bus, int core = 0)
    {
        bus_ = bus;
        coreId_ = core;
    }
    ChipBusPort *bus() const { return bus_; }
    int busCore() const { return coreId_; }

    int maxOutstanding() const { return params_.maxOutstanding; }
    const MemCtrlParams &params() const { return params_; }

  private:
    MemCtrlParams params_;
    Cycles channelFree_ = 0;
    ChipBusPort *bus_ = nullptr;    ///< null on every single-core path
    int coreId_ = 0;
};

} // namespace visa

#endif // VISA_MEM_MEMCTRL_HH
