/**
 * @file
 * Main-memory timing: a fixed 100 ns access latency (Table 1) plus a
 * channel-occupancy contention model. With a single outstanding request
 * (the VISA, simple-fixed, and simple mode cases) the latency is exactly
 * the worst-case memory stall time; with multiple outstanding requests
 * (complex mode) later requests can be delayed by channel contention,
 * which is exactly why the complex pipeline cannot be bounded by Table 1
 * (paper §3.2).
 */

#ifndef VISA_MEM_MEMCTRL_HH
#define VISA_MEM_MEMCTRL_HH

#include <cstdint>

#include "sim/types.hh"

namespace visa
{

/** Timing parameters of the memory controller. */
struct MemCtrlParams
{
    /** Worst-case (uncontended) access latency, ns (Table 1). */
    double accessNs = 100.0;
    /** Channel occupancy per request, ns (bandwidth limit). */
    double occupancyNs = 30.0;
    /** Maximum outstanding misses (MSHRs) in complex mode. */
    int maxOutstanding = 8;
};

/** Converts the ns-specified memory timing into cycles at frequency f. */
class MemController
{
  public:
    explicit MemController(const MemCtrlParams &params = {})
        : params_(params)
    {}

    /**
     * Uncontended miss penalty in cycles at @p f MHz: the worst-case
     * memory stall time the VISA is specified with.
     */
    Cycles
    stallCycles(MHz f) const
    {
        // ceil(accessNs * f / 1000)
        auto num = static_cast<Cycles>(params_.accessNs * f);
        return (num + 999) / 1000;
    }

    /** Channel occupancy in cycles at @p f MHz. */
    Cycles
    occupancyCycles(MHz f) const
    {
        auto num = static_cast<Cycles>(params_.occupancyNs * f);
        return (num + 999) / 1000;
    }

    /**
     * Schedule a request issued at absolute cycle @p now with frequency
     * @p f; @return the absolute cycle the fill completes. Applies the
     * channel contention model.
     */
    Cycles
    schedule(Cycles now, MHz f)
    {
        Cycles start = now > channelFree_ ? now : channelFree_;
        channelFree_ = start + occupancyCycles(f);
        return start + stallCycles(f);
    }

    /**
     * Schedule a request with the guarantee that it is the only
     * outstanding one (simple mode / simple-fixed): no contention.
     */
    Cycles
    scheduleExclusive(Cycles now, MHz f) const
    {
        return now + stallCycles(f);
    }

    /** Forget channel state (e.g., across task boundaries). */
    void reset() { channelFree_ = 0; }

    int maxOutstanding() const { return params_.maxOutstanding; }
    const MemCtrlParams &params() const { return params_; }

  private:
    MemCtrlParams params_;
    Cycles channelFree_ = 0;
};

} // namespace visa

#endif // VISA_MEM_MEMCTRL_HH
