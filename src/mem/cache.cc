#include "mem/cache.hh"

#include "sim/logging.hh"

namespace visa
{

namespace
{

bool
isPow2(std::uint32_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // anonymous namespace

Cache::Cache(const CacheParams &params)
    : params_(params)
{
    if (!isPow2(params.sizeBytes) || !isPow2(params.assoc) ||
        !isPow2(params.blockBytes)) {
        fatal("cache '%s': all geometry parameters must be powers of two",
              params.name.c_str());
    }
    if (params.sizeBytes % (params.assoc * params.blockBytes) != 0)
        fatal("cache '%s': size not divisible by assoc*block",
              params.name.c_str());
    numSets_ = params.sizeBytes / (params.assoc * params.blockBytes);
    lines_.resize(static_cast<std::size_t>(numSets_) * params.assoc);
    blockShift_ =
        static_cast<std::uint32_t>(std::countr_zero(params.blockBytes));
    tagShift_ =
        blockShift_ + static_cast<std::uint32_t>(std::countr_zero(numSets_));
}

Cache::Line *
Cache::victimIn(Line *ways)
{
    // Invalid ways always win.
    for (std::uint32_t w = 0; w < params_.assoc; ++w)
        if (!ways[w].valid)
            return &ways[w];
    switch (params_.repl) {
      case ReplPolicy::Lru:
      case ReplPolicy::Fifo: {
        // For FIFO the stamp is set at fill only, so oldest-stamp
        // selection implements both policies.
        Line *victim = &ways[0];
        for (std::uint32_t w = 1; w < params_.assoc; ++w)
            if (ways[w].lruStamp < victim->lruStamp)
                victim = &ways[w];
        return victim;
      }
      case ReplPolicy::Random: {
        // 16-bit Fibonacci LFSR: deterministic, seed-fixed.
        lfsr_ = (lfsr_ >> 1) ^
                (static_cast<std::uint32_t>(-(lfsr_ & 1u)) & 0xB400u);
        return &ways[lfsr_ % params_.assoc];
      }
    }
    return &ways[0];
}

void
Cache::fill(Line *ways, Addr tag)
{
    ++misses_;
    Line *victim = victimIn(ways);
    victim->valid = true;
    victim->tag = tag;
    victim->lruStamp = ++stamp_;
    // The victim may have been the MRU-filter line; re-point the filter
    // at the block just filled (trivially the most recent access).
    mruWays_ = ways;
    mruTag_ = tag;
    mruLine_ = victim;
}

void
Cache::flush()
{
    for (auto &l : lines_)
        l.valid = false;
    mruWays_ = nullptr;
    mruLine_ = nullptr;
}

} // namespace visa
