/**
 * @file
 * Memory-mapped platform devices (paper §2.2 and §4.3): the watchdog
 * counter that enforces sub-task checkpoints, the cycle counter used to
 * measure sub-task AETs, the frequency registers, and reporting ports
 * used by the run-time system and the test harness.
 */

#ifndef VISA_MEM_PLATFORM_HH
#define VISA_MEM_PLATFORM_HH

#include <cstdint>
#include <functional>
#include <string>

#include "isa/isa.hh"
#include "sim/types.hh"

namespace visa
{

/**
 * The device block at @ref mmio. One instance is shared by a CPU and
 * the run-time system; the CPU calls tick() once per core cycle.
 */
class Platform
{
  public:
    /** Handle a load from the MMIO window. */
    Word load(Addr addr) const;

    /** Handle a store to the MMIO window. */
    void store(Addr addr, Word value);

    /**
     * Advance one core cycle: the cycle counter increments and an armed
     * watchdog decrements (paper: "hardware autonomously decrements the
     * watchdog counter by one every cycle").
     *
     * @return true if the watchdog reached zero this cycle and
     *         missed-checkpoint exceptions are not masked.
     */
    bool
    tick()
    {
        ++cycleCounter_;
        if (!watchdogArmed_)
            return false;
        if (--watchdog_ > 0)
            return false;
        watchdogArmed_ = false;
        if (masked_) {
            ++expiredWhileMasked_;
            return false;
        }
        return true;
    }

    /** Result of advancing several cycles at once. */
    struct TickResult
    {
        bool expired = false;    ///< unmasked watchdog expiry occurred
        Cycles offset = 0;       ///< cycles into the span it happened
    };

    /**
     * Advance @p n cycles at once (used by the in-order pipeline, which
     * retires instructions in multi-cycle steps). Equivalent to n
     * individual tick() calls.
     */
    TickResult
    tickN(Cycles n)
    {
        TickResult res;
        cycleCounter_ += n;
        if (!watchdogArmed_ || static_cast<std::uint64_t>(watchdog_) > n) {
            if (watchdogArmed_)
                watchdog_ -= static_cast<std::int64_t>(n);
            return res;
        }
        res.offset = static_cast<Cycles>(watchdog_);
        watchdog_ = 0;
        watchdogArmed_ = false;
        if (masked_) {
            ++expiredWhileMasked_;
        } else {
            res.expired = true;
        }
        return res;
    }

    /** Mask/unmask missed-checkpoint exceptions (paper §2.2). */
    void maskWatchdog(bool masked) { masked_ = masked; }
    bool watchdogMasked() const { return masked_; }

    /** Disarm and clear the watchdog (between tasks). */
    void
    clearWatchdog()
    {
        watchdog_ = 0;
        watchdogArmed_ = false;
    }

    std::int64_t watchdogValue() const { return watchdogArmed_ ? watchdog_ : 0; }
    bool watchdogArmed() const { return watchdogArmed_; }

    std::uint64_t cycleCounter() const { return cycleCounter_; }
    void resetCycleCounter() { cycleCounter_ = 0; }

    void setCurrentFreq(MHz f) { curFreq_ = f; }
    MHz currentFreq() const { return curFreq_; }
    void setRecoveryFreq(MHz f) { recFreq_ = f; }
    MHz recoveryFreq() const { return recFreq_; }

    int currentSubtask() const { return curSubtask_; }
    Word lastChecksum() const { return lastChecksum_; }
    bool checksumReported() const { return checksumReported_; }
    const std::string &consoleOutput() const { return console_; }

    /** How many times the watchdog expired while masked (diagnostic). */
    std::uint64_t expiredWhileMasked() const { return expiredWhileMasked_; }

    /** Reset everything except the host hooks. */
    void reset();

    /** Host hook: a sub-task began (argument: sub-task id). */
    std::function<void(int)> onSubtaskBegin;
    /** Host hook: an AET was reported (sub-task id, cycles). */
    std::function<void(int, std::uint64_t)> onAetReport;

  private:
    std::int64_t watchdog_ = 0;
    bool watchdogArmed_ = false;
    bool masked_ = true;
    std::uint64_t cycleCounter_ = 0;
    MHz curFreq_ = 1000;
    MHz recFreq_ = 1000;
    int curSubtask_ = 0;
    Word lastChecksum_ = 0;
    bool checksumReported_ = false;
    std::string console_;
    std::uint64_t expiredWhileMasked_ = 0;
};

} // namespace visa

#endif // VISA_MEM_PLATFORM_HH
