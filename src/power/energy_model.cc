#include "power/energy_model.hh"

#include <cmath>

#include "sim/logging.hh"

namespace visa
{

namespace
{

// Effective-capacitance coefficients (farads). Absolute values are
// calibrated to Wattch-era magnitudes (hundreds of pJ per large-array
// access at 1.8 V); the experiments only use relative comparisons.
constexpr double cArray = 120e-15;    ///< per sqrt(total bits)
constexpr double cWidth = 12e-15;     ///< per payload bit
constexpr double cDecode = 25e-15;    ///< per address bit
constexpr double cMatch = 8e-15;      ///< CAM broadcast, per entry-bit
constexpr double cClock = 600e-12;    ///< full-die clock tree per cycle

double
structCeff(const StructGeom &g)
{
    // Energy of ONE port access. Multi-porting lengthens word/bit
    // lines roughly linearly in the port count, so a single access to
    // a heavily ported array costs more than to a single-ported one;
    // it does not cost the whole structure's peak (that is
    // peakCycleEnergy's job).
    if (g.entries == 0 || g.bits == 0)
        return 0.0;
    const double total_bits =
        static_cast<double>(g.entries) * static_cast<double>(g.bits);
    const double port_factor = 0.6 + 0.4 * g.ports;
    double c = (cArray * std::sqrt(total_bits) +
                cWidth * static_cast<double>(g.bits)) *
                   port_factor +
               cDecode * std::log2(static_cast<double>(g.entries) + 1.0);
    if (g.cam)
        c += cMatch * static_cast<double>(g.entries) *
             static_cast<double>(g.bits);
    return c;
}

} // anonymous namespace

EnergyModel::EnergyModel(const std::array<StructGeom, numUnits> &geoms,
                         double die_scale)
    : geoms_(geoms), clockCeff_(cClock * die_scale)
{
    for (int i = 0; i < numUnits; ++i)
        ceff_[static_cast<std::size_t>(i)] =
            structCeff(geoms_[static_cast<std::size_t>(i)]);
}

double
EnergyModel::accessEnergy(Unit u, double volts) const
{
    return ceff_[static_cast<std::size_t>(static_cast<int>(u))] * volts *
           volts;
}

double
EnergyModel::clockEnergyPerCycle(double volts) const
{
    return clockCeff_ * volts * volts;
}

double
EnergyModel::peakCycleEnergy(Unit u, double volts) const
{
    const auto &g = geoms_[static_cast<std::size_t>(static_cast<int>(u))];
    return accessEnergy(u, volts) * g.peakPerCycle;
}

double
EnergyModel::unitEpochEnergy(Unit u, const PowerActivity &act,
                             double volts, ClockGating gating) const
{
    const double accesses = static_cast<double>(act.count(u));
    double e = accessEnergy(u, volts) * accesses;
    if (gating == ClockGating::Standby10) {
        const auto &g =
            geoms_[static_cast<std::size_t>(static_cast<int>(u))];
        if (g.entries != 0) {
            // Cycles the unit sat idle, approximated by charging full
            // activity against its peak throughput.
            double busy = accesses / g.peakPerCycle;
            double idle =
                std::max(0.0, static_cast<double>(act.cycles) - busy);
            e += 0.10 * peakCycleEnergy(u, volts) * idle;
        }
    }
    return e;
}

double
EnergyModel::epochEnergy(const PowerActivity &act, double volts,
                         ClockGating gating) const
{
    double e = clockEnergyPerCycle(volts) *
               static_cast<double>(act.cycles);
    for (int i = 0; i < numUnits; ++i)
        e += unitEpochEnergy(static_cast<Unit>(i), act, volts, gating);
    return e;
}

EnergyModel
complexEnergyModel()
{
    std::array<StructGeom, numUnits> g{};
    auto set = [&](Unit u, StructGeom geom) {
        g[static_cast<std::size_t>(static_cast<int>(u))] = geom;
    };
    // 64 KB caches: 1024 blocks of 512 data bits + ~18 tag bits.
    set(Unit::ICache, {1024, 530, 1, false, 1});
    set(Unit::DCache, {1024, 530, 2, false, 2});
    // 2^16-entry gshare (2 b) + 2^16-entry indirect table (32 b).
    set(Unit::Bpred, {65536, 34, 1, false, 2});
    set(Unit::FetchQueue, {16, 64, 2, false, 8});
    set(Unit::RenameMap, {32, 8, 12, false, 4});
    set(Unit::IssueQueue, {64, 32, 4, true, 8});
    set(Unit::Lsq, {64, 48, 2, true, 4});
    // 128-entry physical register file, 8R/4W.
    set(Unit::RegfileRead, {128, 64, 8, false, 8});
    set(Unit::RegfileWrite, {128, 64, 4, false, 4});
    set(Unit::Fu, {4096, 64, 1, false, 4});
    set(Unit::ActiveList, {128, 40, 8, false, 8});
    set(Unit::ResultBus, {1024, 64, 1, false, 4});
    return EnergyModel(g, 1.0);
}

EnergyModel
simpleFixedEnergyModel()
{
    std::array<StructGeom, numUnits> g{};
    auto set = [&](Unit u, StructGeom geom) {
        g[static_cast<std::size_t>(static_cast<int>(u))] = geom;
    };
    // Same VISA caches (Table 1), single-ported.
    set(Unit::ICache, {1024, 530, 1, false, 1});
    set(Unit::DCache, {1024, 530, 1, false, 1});
    // No predictor, no fetch queue, no rename/IQ/LSQ/active list:
    // zero-sized structures burn nothing.
    set(Unit::Bpred, {0, 0, 0, false, 1});
    set(Unit::FetchQueue, {0, 0, 0, false, 1});
    set(Unit::RenameMap, {0, 0, 0, false, 1});
    set(Unit::IssueQueue, {0, 0, 0, false, 1});
    set(Unit::Lsq, {0, 0, 0, false, 1});
    // Architectural register file only: 32 x 64 b, 2R/1W.
    set(Unit::RegfileRead, {32, 64, 2, false, 2});
    set(Unit::RegfileWrite, {32, 64, 1, false, 1});
    set(Unit::Fu, {4096, 64, 1, false, 1});
    set(Unit::ActiveList, {0, 0, 0, false, 1});
    set(Unit::ResultBus, {256, 64, 1, false, 1});
    // Halved die dimensions (paper §5.2).
    return EnergyModel(g, 0.5);
}

} // namespace visa
