#include "power/dvs.hh"

#include <cmath>

#include "sim/logging.hh"

namespace visa
{

DvsTable::DvsTable(double freq_multiplier)
{
    // 37 points: 100 MHz / 0.70 V ... 1000 MHz / 1.80 V in 25 MHz
    // increments (paper: ~0.03 V per step; we use the exact linear
    // interpolation 1.10 V / 36 steps so the endpoints match XScale).
    for (int i = 0; i < 37; ++i) {
        DvsSetting s;
        s.freq = static_cast<MHz>(
            std::lround((100.0 + 25.0 * i) * freq_multiplier));
        s.volts = 0.70 + (1.10 / 36.0) * i;
        settings_.push_back(s);
    }
}

double
DvsTable::voltsAt(MHz f) const
{
    for (const auto &s : settings_)
        if (s.freq == f)
            return s.volts;
    fatal("dvs: %u MHz is not an operating point", f);
}

DvsSetting
DvsTable::ceilSetting(MHz f) const
{
    for (const auto &s : settings_)
        if (s.freq >= f)
            return s;
    fatal("dvs: no operating point reaches %u MHz", f);
}

bool
DvsTable::isSetting(MHz f) const
{
    for (const auto &s : settings_)
        if (s.freq == f)
            return true;
    return false;
}

} // namespace visa
