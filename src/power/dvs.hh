/**
 * @file
 * Dynamic voltage/frequency scaling table (paper §5.2): 37 settings
 * from 100 MHz / 0.70 V to 1 GHz / 1.80 V in 25 MHz steps,
 * extrapolated from the Intel XScale's five published points.
 */

#ifndef VISA_POWER_DVS_HH
#define VISA_POWER_DVS_HH

#include <vector>

#include "sim/types.hh"

namespace visa
{

/** One DVS operating point. */
struct DvsSetting
{
    MHz freq = 0;
    double volts = 0.0;
};

/** The 37-point XScale-extrapolated DVS table. */
class DvsTable
{
  public:
    /**
     * @param freq_multiplier frequency achievable at a given voltage,
     *        relative to the baseline table (Fig. 3 gives simple-fixed
     *        a 1.5x advantage: it reaches 1.5x the frequency at the
     *        same voltage).
     */
    explicit DvsTable(double freq_multiplier = 1.0);

    const std::vector<DvsSetting> &settings() const { return settings_; }

    MHz minFreq() const { return settings_.front().freq; }
    MHz maxFreq() const { return settings_.back().freq; }

    /** Voltage of the operating point with frequency @p f (exact). */
    double voltsAt(MHz f) const;

    /** The lowest setting with frequency >= @p f; fatal if none. */
    DvsSetting ceilSetting(MHz f) const;

    /** @return true if @p f is one of the table's operating points. */
    bool isSetting(MHz f) const;

  private:
    std::vector<DvsSetting> settings_;
};

/**
 * Time (and energy) cost of one frequency/voltage switch, ns. Charged
 * as the `ovhd` term of EQ 1-4; dominated by the voltage regulator
 * slew. Also budgets the pipeline drain and the detection slack of the
 * in-order simulator (it stops at the first instruction boundary after
 * the watchdog fires).
 */
inline constexpr double dvsSwitchOverheadNs = 20000.0;    // 20 us

} // namespace visa

#endif // VISA_POWER_DVS_HH
