/**
 * @file
 * Wattch-style activity-based energy model (paper §5.2, substitution 2
 * in DESIGN.md). Each microarchitectural structure gets an effective
 * switched capacitance derived from its geometry (entries, width,
 * ports, RAM vs CAM); energy per access is C_eff * V^2. The clock tree
 * scales with die dimensions (halved for simple-fixed). Two
 * conditional-clocking styles are modeled, mirroring Wattch's
 * "perfect" gating with and without 10% standby power.
 */

#ifndef VISA_POWER_ENERGY_MODEL_HH
#define VISA_POWER_ENERGY_MODEL_HH

#include <array>

#include "cpu/activity.hh"

namespace visa
{

/** Conditional clocking styles (Wattch cc modes used by the paper). */
enum class ClockGating
{
    Perfect,      ///< proportional gating; idle structures burn nothing
    Standby10,    ///< idle structures still draw 10% of peak power
};

/** Geometry of one structure, from which capacitance is derived. */
struct StructGeom
{
    std::uint64_t entries = 0;
    std::uint32_t bits = 0;        ///< payload width per entry
    std::uint32_t ports = 1;       ///< read+write port count
    bool cam = false;              ///< fully-associative match (IQ/LSQ)
    /** Peak accesses per cycle (for standby-power normalization). */
    std::uint32_t peakPerCycle = 1;
};

/** Per-processor energy model. */
class EnergyModel
{
  public:
    /**
     * @param geoms      geometry of every Unit
     * @param die_scale  relative die length (1.0 complex, 0.5 for
     *                   simple-fixed: both dimensions halved, §5.2)
     */
    EnergyModel(const std::array<StructGeom, numUnits> &geoms,
                double die_scale);

    /** Energy of one access to @p u at supply @p volts, in joules. */
    double accessEnergy(Unit u, double volts) const;

    /** Clock-tree energy per cycle at @p volts, in joules. */
    double clockEnergyPerCycle(double volts) const;

    /** Peak per-cycle energy of @p u (standby normalization). */
    double peakCycleEnergy(Unit u, double volts) const;

    /**
     * Total energy of an execution epoch: @p act activity counters
     * accumulated over act.cycles cycles at a fixed voltage.
     */
    double epochEnergy(const PowerActivity &act, double volts,
                       ClockGating gating) const;

    /**
     * Energy one structure contributed to an epoch (dynamic accesses
     * plus its standby share under the given gating style). The sum
     * over all units plus clockEnergyPerCycle * cycles equals
     * epochEnergy().
     */
    double unitEpochEnergy(Unit u, const PowerActivity &act,
                           double volts, ClockGating gating) const;

    const StructGeom &geom(Unit u) const
    {
        return geoms_[static_cast<std::size_t>(static_cast<int>(u))];
    }

  private:
    std::array<StructGeom, numUnits> geoms_;
    std::array<double, numUnits> ceff_;    ///< farads per access
    double clockCeff_;                      ///< farads per cycle
};

/** Energy model of the complex 4-way out-of-order processor (§3.2). */
EnergyModel complexEnergyModel();

/**
 * Energy model of the literal-VISA simple-fixed processor: structures
 * sized exactly to the VISA (32-entry architectural register file, no
 * rename/IQ/LSQ/active-list), die dimensions halved (§5.2).
 */
EnergyModel simpleFixedEnergyModel();

} // namespace visa

#endif // VISA_POWER_ENERGY_MODEL_HH
