/**
 * @file
 * Epoch-based power metering. Voltage and frequency are constant
 * within an epoch; the meter snapshots a CPU's activity counters at
 * each frequency change and integrates energy and wall-clock time,
 * yielding average power — the metric of Figures 2-4.
 */

#ifndef VISA_POWER_METER_HH
#define VISA_POWER_METER_HH

#include "cpu/cpu.hh"
#include "power/dvs.hh"
#include "power/energy_model.hh"

namespace visa
{

/** Integrates a CPU's energy across DVS epochs. */
class PowerMeter
{
  public:
    PowerMeter(const Cpu &cpu, EnergyModel model, const DvsTable &dvs,
               ClockGating gating)
        : cpu_(&cpu), model_(std::move(model)), dvs_(&dvs),
          gating_(gating)
    {
    }

    /**
     * Close the epoch that ran at @p f MHz: accounts everything the
     * CPU did since the previous snapshot. Call just before each
     * frequency change and at the end of the experiment.
     */
    void
    closeEpoch(MHz f)
    {
        PowerActivity delta = cpu_->activity().since(snapshot_);
        snapshot_ = cpu_->activity();
        if (delta.cycles == 0)
            return;    // empty epoch (e.g. the pre-run default clock)
        double volts = dvs_->voltsAt(f);
        accumulate(delta, volts);
        timeS_ += static_cast<double>(delta.cycles) / (f * 1e6);
    }

    /**
     * Account an idle stretch (e.g., waiting for the next period at
     * the 100 MHz floor): clock and standby power only.
     */
    void
    accountIdle(double seconds, MHz f)
    {
        if (seconds <= 0)
            return;
        double volts = dvs_->voltsAt(f);
        PowerActivity idle;
        idle.cycles = static_cast<std::uint64_t>(seconds * f * 1e6);
        accumulate(idle, volts);
        timeS_ += seconds;
    }

    /** Account the energy of one frequency/voltage switch. */
    void
    accountSwitch(MHz f)
    {
        // The switch interval burns clock power at the higher of the
        // two voltages; we charge the current setting for its length.
        accountIdle(dvsSwitchOverheadNs * 1e-9, f);
    }

    double totalEnergyJoules() const { return energyJ_; }
    double totalTimeSeconds() const { return timeS_; }

    /** Energy attributed to one structure across all epochs. */
    double
    unitEnergyJoules(Unit u) const
    {
        return unitJ_[static_cast<std::size_t>(static_cast<int>(u))];
    }

    /** Energy attributed to the clock tree across all epochs. */
    double clockEnergyJoules() const { return clockJ_; }

    double
    averagePowerWatts() const
    {
        return timeS_ > 0 ? energyJ_ / timeS_ : 0.0;
    }

    void
    reset()
    {
        snapshot_ = cpu_->activity();
        energyJ_ = 0.0;
        timeS_ = 0.0;
        clockJ_ = 0.0;
        unitJ_.fill(0.0);
    }

  private:
    void
    accumulate(const PowerActivity &delta, double volts)
    {
        double clock = model_.clockEnergyPerCycle(volts) *
                       static_cast<double>(delta.cycles);
        clockJ_ += clock;
        energyJ_ += clock;
        for (int i = 0; i < numUnits; ++i) {
            double e = model_.unitEpochEnergy(static_cast<Unit>(i),
                                              delta, volts, gating_);
            unitJ_[static_cast<std::size_t>(i)] += e;
            energyJ_ += e;
        }
    }

    const Cpu *cpu_;
    EnergyModel model_;
    const DvsTable *dvs_;
    ClockGating gating_;
    PowerActivity snapshot_;
    double energyJ_ = 0.0;
    double timeS_ = 0.0;
    double clockJ_ = 0.0;
    std::array<double, numUnits> unitJ_{};
};

} // namespace visa

#endif // VISA_POWER_METER_HH
