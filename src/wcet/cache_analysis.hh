/**
 * @file
 * Static I-cache analysis producing the caching categorizations of
 * paper Table 2 (always-hit / always-miss / first-miss / first-hit,
 * per loop level).
 *
 * Method: persistence analysis by set-conflict counting. A memory
 * block is *persistent* in a scope (the function body or a loop) when
 * the number of distinct program memory blocks accessed during the
 * scope's execution that map to its cache set does not exceed the
 * associativity — once loaded it can never be evicted inside the
 * scope. Such a block is first-miss at the *outermost* scope in which
 * it is persistent (one miss per scope entry); blocks persistent
 * nowhere are always-miss; non-leading instructions of a memory block
 * inside a basic block are always-hit (the leading access loads the
 * line and nothing can evict it mid-block). The first-hit category is
 * defined for completeness but not produced by this analysis.
 *
 * This is sound and, for programs whose footprint fits the cache (the
 * hard real-time norm), exact.
 */

#ifndef VISA_WCET_CACHE_ANALYSIS_HH
#define VISA_WCET_CACHE_ANALYSIS_HH

#include <map>
#include <set>

#include "mem/cache.hh"
#include "wcet/cfg.hh"

namespace visa
{

/** Caching categorizations (paper Table 2). */
enum class CacheCat
{
    AlwaysHit,     ///< guaranteed in cache when accessed
    AlwaysMiss,    ///< not guaranteed in cache
    FirstMiss,     ///< misses once per entry of its assigned scope
    FirstHit,      ///< first access hits, later may miss (not produced)
};

/** @return a short mnemonic ("h", "m", "fm", "fh") as in the paper. */
const char *cacheCatName(CacheCat cat);

/** Categorization of one instruction fetch. */
struct InstrCategory
{
    CacheCat cat = CacheCat::AlwaysMiss;
    /**
     * For FirstMiss: the scope the single miss is charged to — a loop
     * id from the Cfg, or -1 for the function body (one miss per
     * task execution).
     */
    int fmScope = -1;
};

/** Per-function static I-cache analysis. */
class ICacheAnalysis
{
  public:
    /**
     * @param cfg        the function under analysis
     * @param params     I-cache geometry (Table 1)
     * @param callee_footprints memory-block footprint (block-aligned
     *        addresses) of each callee entry, for conflict counting
     *        across calls; pass the accumulated map built bottom-up
     *        over the call graph
     */
    ICacheAnalysis(const Cfg &cfg, const CacheParams &params,
                   const std::map<Addr, std::set<Addr>> &callee_footprints);

    /** Categorization of the fetch at @p pc. */
    const InstrCategory &at(Addr pc) const;

    /**
     * Distinct first-miss memory blocks charged to @p scope
     * (-1 = function body, otherwise a loop id).
     */
    const std::set<Addr> &fmBlocks(int scope) const;

    /**
     * This function's own transitive memory-block footprint (for use
     * as a callee footprint higher up the call graph).
     */
    const std::set<Addr> &footprint() const { return footprint_; }

  private:
    Addr blockAddr(Addr pc) const { return pc & ~(blockBytes_ - 1); }

    const Cfg &cfg_;
    Addr blockBytes_;
    std::uint32_t numSets_;
    std::uint32_t assoc_;
    std::map<Addr, InstrCategory> cats_;
    std::map<int, std::set<Addr>> fmBlocks_;
    std::set<Addr> footprint_;
    std::set<Addr> emptySet_;
};

} // namespace visa

#endif // VISA_WCET_CACHE_ANALYSIS_HH
