#include "wcet/cfg.hh"

#include <algorithm>
#include <deque>

#include "isa/predecode.hh"
#include "sim/logging.hh"

namespace visa
{

Cfg::Cfg(const Program &prog, Addr entry)
    : prog_(&prog), entry_(entry)
{
    if (!prog.containsPc(entry))
        fatal("cfg: entry 0x%x outside program text", entry);
    buildBlocks();
    computeDominators();
    findLoops();
    computeTopoOrder();
}

void
Cfg::buildBlocks()
{
    const Program &prog = *prog_;
    std::set<Addr> reachable;
    std::set<Addr> leaders{entry_};
    std::deque<Addr> work{entry_};

    auto enqueue = [&](Addr a) {
        if (!prog.containsPc(a))
            fatal("cfg: control flow leaves text at 0x%x", a);
        if (!reachable.count(a))
            work.push_back(a);
    };

    // Discover reachable code one straight-line run at a time via the
    // translation cache's pre-decode primitive (isa/predecode.hh), so
    // the analyzer and the executor carve identical runs from the same
    // code.
    const Instruction *text = prog.text.data();
    const std::size_t words = prog.text.size();
    while (!work.empty()) {
        const Addr start = work.front();
        work.pop_front();
        if (reachable.count(start))
            continue;
        const std::uint32_t len =
            straightLineLength(text, words, prog.textBase, start);
        if (len == 0)
            fatal("cfg: control flow leaves text at 0x%x", start);
        // Mark the run; stop early if it merges into the tail of an
        // already-scanned run (its terminator was handled there).
        std::uint32_t k = 0;
        for (; k < len; ++k) {
            const Addr a = start + 4 * k;
            if (reachable.count(a))
                break;
            reachable.insert(a);
        }
        if (k < len)
            continue;
        const Addr pc = start + 4 * (len - 1);
        const Instruction &inst = prog.at(pc);
        switch (inst.cls()) {
          case InstrClass::CondBranch:
            leaders.insert(static_cast<Addr>(inst.imm));
            leaders.insert(pc + 4);
            enqueue(static_cast<Addr>(inst.imm));
            enqueue(pc + 4);
            break;
          case InstrClass::DirectJump:
            if (inst.op == Opcode::JAL) {
                // Call: record the target, continue at the return site.
                callTargets_.insert(static_cast<Addr>(inst.imm));
                leaders.insert(pc + 4);
                enqueue(pc + 4);
            } else {
                leaders.insert(static_cast<Addr>(inst.imm));
                enqueue(static_cast<Addr>(inst.imm));
            }
            break;
          case InstrClass::IndirectJump:
            if (inst.op == Opcode::JALR)
                fatal("cfg: jalr at 0x%x unsupported by timing analysis",
                      pc);
            // JR is treated as the function return.
            break;
          case InstrClass::Halt:
            break;
          default:
            // The run was clamped by the end of text: falling through
            // would leave the program.
            enqueue(pc + 4);
        }
    }

    // Carve reachable instructions into blocks.
    std::vector<Addr> addrs(reachable.begin(), reachable.end());
    std::sort(addrs.begin(), addrs.end());
    for (std::size_t i = 0; i < addrs.size();) {
        Addr start = addrs[i];
        if (!leaders.count(start)) {
            // unreachable-by-fallthrough stray; must not happen
            panic("cfg: non-leader block start at 0x%x", start);
        }
        std::size_t j = i;
        for (;;) {
            Addr pc = addrs[j];
            const Instruction &inst = prog.at(pc);
            bool ends = inst.isControl() || inst.isHalt();
            bool next_is_leader = j + 1 < addrs.size() &&
                                  addrs[j + 1] == pc + 4 &&
                                  leaders.count(pc + 4);
            bool discontiguous =
                j + 1 >= addrs.size() || addrs[j + 1] != pc + 4;
            if (ends || next_is_leader || discontiguous) {
                BasicBlock bb;
                bb.id = static_cast<int>(blocks_.size());
                bb.startPc = start;
                bb.endPc = pc + 4;
                if (inst.op == Opcode::JAL)
                    bb.callTarget = static_cast<Addr>(inst.imm);
                if (inst.isIndirectJump())
                    bb.isReturn = true;
                blockAt_[start] = bb.id;
                blocks_.push_back(bb);
                i = j + 1;
                break;
            }
            ++j;
        }
    }

    // Wire successor/predecessor edges.
    for (auto &bb : blocks_) {
        const Instruction &last = prog.at(bb.endPc - 4);
        auto link = [&](Addr target) {
            auto it = blockAt_.find(target);
            if (it == blockAt_.end())
                panic("cfg: edge to unknown block 0x%x", target);
            bb.succs.push_back(it->second);
            blocks_[static_cast<std::size_t>(it->second)].preds.push_back(
                bb.id);
        };
        switch (last.cls()) {
          case InstrClass::CondBranch:
            link(static_cast<Addr>(last.imm));    // taken first
            link(bb.endPc);
            break;
          case InstrClass::DirectJump:
            if (last.op == Opcode::JAL)
                link(bb.endPc);    // resume after the call
            else
                link(static_cast<Addr>(last.imm));
            break;
          case InstrClass::IndirectJump:
          case InstrClass::Halt:
            break;
          default:
            link(bb.endPc);
        }
    }

    entryBlock_ = blockAt_.at(entry_);
    loopOf_.assign(blocks_.size(), -1);
}

void
Cfg::computeDominators()
{
    const std::size_t n = blocks_.size();
    std::set<int> all;
    for (std::size_t i = 0; i < n; ++i)
        all.insert(static_cast<int>(i));
    dom_.assign(n, all);
    dom_[static_cast<std::size_t>(entryBlock_)] = {entryBlock_};

    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t i = 0; i < n; ++i) {
            int b = static_cast<int>(i);
            if (b == entryBlock_)
                continue;
            const auto &preds = blocks_[i].preds;
            if (preds.empty())
                continue;
            std::set<int> meet;
            bool first = true;
            for (int p : preds) {
                const auto &dp = dom_[static_cast<std::size_t>(p)];
                if (first) {
                    meet = dp;
                    first = false;
                } else {
                    std::set<int> tmp;
                    std::set_intersection(meet.begin(), meet.end(),
                                          dp.begin(), dp.end(),
                                          std::inserter(tmp, tmp.begin()));
                    meet = std::move(tmp);
                }
            }
            meet.insert(b);
            if (meet != dom_[i]) {
                dom_[i] = std::move(meet);
                changed = true;
            }
        }
    }
}

bool
Cfg::dominates(int a, int b) const
{
    return dom_[static_cast<std::size_t>(b)].count(a) > 0;
}

void
Cfg::findLoops()
{
    // Natural loops from back edges tail->header (header dominates
    // tail). Any retreating edge whose target does not dominate the
    // source makes the CFG irreducible -> reject.
    std::map<int, int> headerToLoop;
    for (const auto &bb : blocks_) {
        for (int s : bb.succs) {
            if (!dominates(s, bb.id)) {
                // Forward or cross edge; retreating-but-not-dominated
                // edges are detected below via DFS numbering.
                continue;
            }
            // back edge bb -> s (self loops included)
            if (headerToLoop.count(s)) {
                fatal("cfg: loop header block %d has multiple back "
                      "edges; timing analysis requires single-latch "
                      "loops", s);
            }
            Loop loop;
            loop.id = static_cast<int>(loops_.size());
            loop.header = s;
            loop.backedgeTail = bb.id;
            // Collect members: header plus everything that reaches the
            // tail without passing through the header.
            loop.blocks.insert(s);
            std::deque<int> work{bb.id};
            while (!work.empty()) {
                int b = work.front();
                work.pop_front();
                if (loop.blocks.count(b))
                    continue;
                loop.blocks.insert(b);
                for (int p : blocks_[static_cast<std::size_t>(b)].preds)
                    work.push_back(p);
            }
            // The bound annotation sits on the back-edge branch.
            Addr branch_pc =
                blocks_[static_cast<std::size_t>(bb.id)].endPc - 4;
            auto it = prog_->loopBounds.find(branch_pc);
            if (it == prog_->loopBounds.end()) {
                fatal("cfg: loop with header 0x%x lacks a .loopbound "
                      "annotation on its back edge at 0x%x",
                      blocks_[static_cast<std::size_t>(s)].startPc,
                      branch_pc);
            }
            if (it->second == 0)
                fatal("cfg: loop bound at 0x%x must be >= 1", branch_pc);
            loop.bound = it->second;
            headerToLoop[s] = loop.id;
            loops_.push_back(std::move(loop));
        }
    }

    // Reject irreducible flow: a cycle whose "header" is not dominated.
    // Detect: any edge to an already-DFS-active block that is not a
    // recognized back edge.
    {
        std::vector<int> state(blocks_.size(), 0);    // 0 new 1 act 2 done
        std::vector<std::pair<int, std::size_t>> stack;
        stack.push_back({entryBlock_, 0});
        state[static_cast<std::size_t>(entryBlock_)] = 1;
        while (!stack.empty()) {
            auto &[b, idx] = stack.back();
            const auto &succs = blocks_[static_cast<std::size_t>(b)].succs;
            if (idx >= succs.size()) {
                state[static_cast<std::size_t>(b)] = 2;
                stack.pop_back();
                continue;
            }
            int s = succs[idx++];
            if (state[static_cast<std::size_t>(s)] == 1 &&
                !dominates(s, b)) {
                fatal("cfg: irreducible control flow (retreating edge "
                      "%d->%d without domination)", b, s);
            }
            if (state[static_cast<std::size_t>(s)] == 0) {
                state[static_cast<std::size_t>(s)] = 1;
                stack.push_back({s, 0});
            }
        }
    }

    // Nesting: parent = smallest strictly-containing loop.
    for (auto &inner : loops_) {
        int best = -1;
        std::size_t best_size = SIZE_MAX;
        for (const auto &outer : loops_) {
            if (outer.id == inner.id)
                continue;
            if (outer.blocks.size() <= inner.blocks.size())
                continue;
            bool contains = std::includes(
                outer.blocks.begin(), outer.blocks.end(),
                inner.blocks.begin(), inner.blocks.end());
            if (contains && outer.blocks.size() < best_size) {
                best = outer.id;
                best_size = outer.blocks.size();
            }
        }
        inner.parent = best;
        if (best >= 0)
            loops_[static_cast<std::size_t>(best)].children.push_back(
                inner.id);
    }

    // loopOf: innermost loop per block.
    for (const auto &loop : loops_) {
        for (int b : loop.blocks) {
            int cur = loopOf_[static_cast<std::size_t>(b)];
            if (cur < 0 ||
                loops_[static_cast<std::size_t>(cur)].blocks.size() >
                    loop.blocks.size()) {
                loopOf_[static_cast<std::size_t>(b)] = loop.id;
            }
        }
    }
}

void
Cfg::computeTopoOrder()
{
    // Kahn's algorithm over forward edges (back edges removed).
    std::vector<int> indeg(blocks_.size(), 0);
    auto isBackEdge = [&](int from, int to) {
        for (const auto &l : loops_)
            if (l.header == to && l.backedgeTail == from)
                return true;
        return false;
    };
    for (const auto &bb : blocks_)
        for (int s : bb.succs)
            if (!isBackEdge(bb.id, s))
                ++indeg[static_cast<std::size_t>(s)];
    std::deque<int> ready;
    for (std::size_t i = 0; i < blocks_.size(); ++i)
        if (indeg[i] == 0)
            ready.push_back(static_cast<int>(i));
    while (!ready.empty()) {
        int b = ready.front();
        ready.pop_front();
        topo_.push_back(b);
        for (int s : blocks_[static_cast<std::size_t>(b)].succs) {
            if (isBackEdge(b, s))
                continue;
            if (--indeg[static_cast<std::size_t>(s)] == 0)
                ready.push_back(s);
        }
    }
    if (topo_.size() != blocks_.size())
        fatal("cfg: cyclic flow remains after removing back edges "
              "(irreducible CFG)");
}

} // namespace visa
