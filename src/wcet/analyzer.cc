#include "wcet/analyzer.hh"

#include <algorithm>
#include <cmath>
#include <functional>

#include "cpu/simple_cpu.hh"
#include "cpu/visa_timing.hh"
#include "sim/logging.hh"

namespace visa
{

namespace
{

/** One element of an execution path through a scope. */
struct Step
{
    enum Kind { Block, LoopSum, CallSum };
    Kind kind = Block;
    int bb = -1;             ///< Block: basic block id
    bool redirect = false;   ///< Block: chosen edge pays the 4-cycle
                             ///< static-misprediction penalty
    int loopId = -1;         ///< LoopSum: summarized inner loop
    Addr callee = 0;         ///< CallSum: callee entry address
};

using Path = std::vector<Step>;

/** Enumerated paths through one scope (function body or loop body). */
struct ScopePaths
{
    std::vector<Path> paths;
    std::vector<std::size_t> iterIdx;    ///< loop: backedge-terminated
    bool fallback = false;               ///< path cap hit: drain compose
};

/** Everything the analyzer derives for one function. */
struct FuncAnalysis
{
    std::unique_ptr<Cfg> cfg;
    std::unique_ptr<ICacheAnalysis> cache;
    ScopePaths body;
    std::map<int, ScopePaths> loopPaths;
    // Entry function only: per-sub-task regions.
    std::vector<ScopePaths> subtaskPaths;
    std::vector<std::set<Addr>> subtaskFmBlocks;
};

/** Path enumerator over one scope of one function. */
class Enumerator
{
  public:
    Enumerator(const Cfg &cfg, int scope_loop, std::size_t cap,
               Addr region_lo, Addr region_hi)
        : cfg_(cfg), scope_(scope_loop), cap_(cap),
          regionLo_(region_lo), regionHi_(region_hi)
    {
    }

    ScopePaths
    run(int entry_block)
    {
        Path cur;
        dfs(entry_block, cur);
        if (overflow_) {
            warn("wcet: path cap (%zu) exceeded; using drain "
                 "composition for this scope", cap_);
            out_.fallback = true;
        }
        return std::move(out_);
    }

  private:
    bool
    inRegion(const BasicBlock &bb) const
    {
        return bb.startPc >= regionLo_ && bb.startPc < regionHi_;
    }

    /** The child loop of this scope containing @p bid, or -1. */
    int
    childLoopOf(int bid) const
    {
        int l = cfg_.loopOf(bid);
        while (l >= 0 && cfg_.loop(l).parent != scope_)
            l = cfg_.loop(l).parent;
        return l;
    }

    void
    emit(Path cur, bool is_iter)
    {
        if (out_.paths.size() >= cap_) {
            overflow_ = true;
            return;
        }
        if (is_iter)
            out_.iterIdx.push_back(out_.paths.size());
        out_.paths.push_back(std::move(cur));
    }

    void
    visitTarget(int succ, Path cur)
    {
        if (overflow_)
            return;
        if (scope_ >= 0) {
            const Loop &loop = cfg_.loop(scope_);
            if (succ == loop.header) {
                emit(std::move(cur), true);    // back edge: one iteration
                return;
            }
            if (!loop.blocks.count(succ)) {
                emit(std::move(cur), false);   // loop exit
                return;
            }
        } else if (!inRegion(cfg_.block(succ))) {
            emit(std::move(cur), false);       // leaves the region
            return;
        }
        if (cfg_.loopOf(succ) == scope_) {
            dfs(succ, std::move(cur));
            return;
        }
        // Entering a child loop; natural loops are entered at the
        // header.
        int child = childLoopOf(succ);
        if (child < 0)
            panic("wcet: block %d in no child loop of scope %d", succ,
                  scope_);
        const Loop &cl = cfg_.loop(child);
        if (succ != cl.header)
            fatal("wcet: loop at block %d entered other than at its "
                  "header", succ);
        if (scope_ < 0) {
            // Region discipline: a summarized loop must lie entirely
            // inside the current sub-task region.
            for (int m : cl.blocks) {
                if (!inRegion(cfg_.block(m)))
                    fatal("wcet: loop with header 0x%x straddles a "
                          ".subtask boundary",
                          cfg_.block(cl.header).startPc);
            }
        }
        Step s;
        s.kind = Step::LoopSum;
        s.loopId = child;
        cur.push_back(s);
        // Continue from every exit of the child loop.
        std::set<int> exits;
        for (int m : cl.blocks)
            for (int t : cfg_.block(m).succs)
                if (!cl.blocks.count(t))
                    exits.insert(t);
        if (exits.empty()) {
            emit(std::move(cur), false);    // loop never exits locally
            return;
        }
        for (int t : exits)
            visitTarget(t, cur);
    }

    void
    dfs(int bid, Path cur)
    {
        if (overflow_)
            return;
        const BasicBlock &bb = cfg_.block(bid);
        Step s;
        s.kind = Step::Block;
        s.bb = bid;
        cur.push_back(s);
        std::size_t block_step = cur.size() - 1;
        if (bb.callTarget) {
            Step c;
            c.kind = Step::CallSum;
            c.callee = bb.callTarget;
            cur.push_back(c);
        }
        if (bb.succs.empty()) {
            emit(std::move(cur), false);    // halt or return
            return;
        }
        const Instruction &last = cfg_.program().at(bb.endPc - 4);
        if (last.isCondBranch()) {
            // succ[0] = taken, succ[1] = fall-through; the static
            // heuristic predicts backward-taken / forward-not-taken.
            std::size_t pred_idx = last.isBackward(bb.endPc - 4) ? 0 : 1;
            for (std::size_t i = 0; i < bb.succs.size(); ++i) {
                Path branch = cur;
                branch[block_step].redirect = (i != pred_idx);
                visitTarget(bb.succs[i], std::move(branch));
            }
        } else {
            for (int t : bb.succs)
                visitTarget(t, cur);
        }
    }

    const Cfg &cfg_;
    int scope_;
    std::size_t cap_;
    Addr regionLo_;
    Addr regionHi_;
    ScopePaths out_;
    bool overflow_ = false;
};

} // anonymous namespace

/** Analyzer internals. */
struct WcetAnalyzer::Impl
{
    const Program &prog;
    AnalyzerParams params;
    std::map<Addr, FuncAnalysis> funcs;
    std::vector<Addr> bottomUp;    ///< callees before callers
    Addr mainEntry;
    int numSubtasks = 1;

    Impl(const Program &p, AnalyzerParams prm)
        : prog(p), params(std::move(prm)), mainEntry(p.entry)
    {
        discoverFunctions();
        buildCacheAnalyses();
        enumerateAllScopes();
        partitionSubtasks();
    }

    void
    discoverFunctions()
    {
        // DFS over the call graph with cycle (recursion) detection.
        std::map<Addr, int> state;    // 0 new, 1 active, 2 done
        std::function<void(Addr)> visit = [&](Addr entry) {
            if (state[entry] == 2)
                return;
            if (state[entry] == 1)
                fatal("wcet: recursion detected at 0x%x (unsupported)",
                      entry);
            state[entry] = 1;
            auto &fa = funcs[entry];
            fa.cfg = std::make_unique<Cfg>(prog, entry);
            for (Addr callee : fa.cfg->callTargets())
                visit(callee);
            state[entry] = 2;
            bottomUp.push_back(entry);
        };
        visit(mainEntry);
    }

    void
    buildCacheAnalyses()
    {
        std::map<Addr, std::set<Addr>> footprints;
        for (Addr entry : bottomUp) {
            auto &fa = funcs.at(entry);
            fa.cache = std::make_unique<ICacheAnalysis>(
                *fa.cfg, params.icache, footprints);
            footprints[entry] = fa.cache->footprint();
        }
    }

    void
    enumerateAllScopes()
    {
        for (Addr entry : bottomUp) {
            auto &fa = funcs.at(entry);
            const Cfg &cfg = *fa.cfg;
            for (const auto &loop : cfg.loops()) {
                Enumerator e(cfg, loop.id, params.maxPaths, 0, ~0u);
                fa.loopPaths[loop.id] = e.run(loop.header);
            }
            Enumerator e(cfg, -1, params.maxPaths, 0, ~0u);
            fa.body = e.run(cfg.entryBlock());
        }
    }

    void
    partitionSubtasks()
    {
        auto &fa = funcs.at(mainEntry);
        const Cfg &cfg = *fa.cfg;
        std::vector<std::pair<Addr, int>> markers(
            prog.subtaskStarts.begin(), prog.subtaskStarts.end());
        if (markers.empty()) {
            numSubtasks = 1;
            fa.subtaskPaths.push_back(fa.body);
            fa.subtaskFmBlocks.push_back(
                fa.cache->fmBlocks(-1));
            return;
        }
        // Validate: ids 1..s in address order, first marker at entry.
        numSubtasks = static_cast<int>(markers.size());
        for (int i = 0; i < numSubtasks; ++i) {
            if (markers[static_cast<std::size_t>(i)].second != i + 1)
                fatal("wcet: .subtask ids must be 1..%d in address "
                      "order (got %d)", numSubtasks,
                      markers[static_cast<std::size_t>(i)].second);
        }
        if (markers.front().first != prog.entry)
            fatal("wcet: the first .subtask marker must sit at the "
                  "task entry");
        for (int k = 0; k < numSubtasks; ++k) {
            Addr lo = markers[static_cast<std::size_t>(k)].first;
            Addr hi = k + 1 < numSubtasks
                ? markers[static_cast<std::size_t>(k + 1)].first
                : ~0u;
            // Region entry block must start exactly at the marker.
            int entry_block = -1;
            for (const auto &bb : cfg.blocks())
                if (bb.startPc == lo)
                    entry_block = bb.id;
            if (entry_block < 0)
                fatal("wcet: .subtask %d marker 0x%x is not at a basic "
                      "block boundary", k + 1, lo);
            Enumerator e(cfg, -1, params.maxPaths, lo, hi);
            fa.subtaskPaths.push_back(e.run(entry_block));

            // First-miss blocks (task-level persistence) charged to
            // this sub-task: any it can touch.
            std::set<Addr> fm;
            auto collect = [&](const BasicBlock &bb) {
                for (Addr pc = bb.startPc; pc < bb.endPc; pc += 4) {
                    const auto &cat = fa.cache->at(pc);
                    if (cat.cat == CacheCat::FirstMiss &&
                        cat.fmScope == -1) {
                        fm.insert(pc & ~(params.icache.blockBytes - 1));
                    }
                }
            };
            for (const auto &bb : cfg.blocks())
                if (bb.startPc >= lo && bb.startPc < hi)
                    collect(bb);
            fa.subtaskFmBlocks.push_back(std::move(fm));
        }
    }

    // ---- frequency-dependent evaluation ----

    struct EvalCtx
    {
        MHz f = 1000;
        Cycles penalty = 100;
        std::map<std::pair<Addr, int>, Cycles> loopMemo;
        std::map<Addr, Cycles> funcMemo;
    };

    Cycles
    penaltyAt(MHz f) const
    {
        auto num = static_cast<Cycles>(params.memStallNs * f);
        return (num + 999) / 1000;
    }

    /** Time one path on the VISA pipeline model. */
    Cycles
    evalPath(const FuncAnalysis &fa, const Path &path, EvalCtx &ctx) const
    {
        Cycles total = 0;
        VisaTimer timer;
        timer.reset();
        const Instruction *prev = nullptr;
        bool prev_load = false;
        auto flush = [&]() {
            total += timer.totalCycles();
            timer.reset();
            prev = nullptr;
            prev_load = false;
        };
        for (const Step &step : path) {
            if (step.kind == Step::LoopSum) {
                flush();
                total += loopWcet(fa, step.loopId, ctx);
                continue;
            }
            if (step.kind == Step::CallSum) {
                flush();
                total += funcWcet(step.callee, ctx);
                continue;
            }
            const BasicBlock &bb =
                fa.cfg->block(step.bb);
            for (Addr pc = bb.startPc; pc < bb.endPc; pc += 4) {
                const Instruction &inst = fa.cfg->program().at(pc);
                TimingRecord rec;
                rec.exLatency = inst.latency();
                rec.imissPenalty =
                    fa.cache->at(pc).cat == CacheCat::AlwaysMiss
                        ? ctx.penalty
                        : 0;
                rec.dmissPenalty = 0;    // padded per sub-task
                rec.loadUseStall =
                    prev_load && prev && inst.dependsOn(*prev);
                if (pc == bb.endPc - 4) {
                    if (inst.isIndirectJump())
                        rec.redirect = true;    // JR return stalls fetch
                    else if (inst.isCondBranch())
                        rec.redirect = step.redirect;
                }
                timer.consume(rec);
                prev = &inst;
                prev_load = inst.isLoad();
            }
        }
        total += timer.totalCycles();
        return total;
    }

    Cycles
    evalConcat(const FuncAnalysis &fa, const Path &a, const Path &b,
               EvalCtx &ctx) const
    {
        Path joined = a;
        joined.insert(joined.end(), b.begin(), b.end());
        return evalPath(fa, joined, ctx);
    }

    /** Max path time over a scope's enumerated paths. */
    Cycles
    maxPath(const FuncAnalysis &fa, const ScopePaths &sp,
            EvalCtx &ctx) const
    {
        Cycles best = 0;
        for (const auto &p : sp.paths)
            best = std::max(best, evalPath(fa, p, ctx));
        return best;
    }

    Cycles
    loopWcet(const FuncAnalysis &fa, int loop_id, EvalCtx &ctx) const
    {
        Addr fentry = fa.cfg->entry();
        auto key = std::make_pair(fentry, loop_id);
        auto it = ctx.loopMemo.find(key);
        if (it != ctx.loopMemo.end())
            return it->second;

        const ScopePaths &sp = fa.loopPaths.at(loop_id);
        const Loop &loop = fa.cfg->loop(loop_id);
        if (sp.paths.empty())
            panic("wcet: loop %d has no paths", loop_id);

        Cycles t_first = maxPath(fa, sp, ctx);
        Cycles t_iter = t_first;    // drain composition fallback
        if (!sp.fallback && sp.paths.size() <= params.maxOverlapPaths &&
            !sp.iterIdx.empty()) {
            // Healy-style overlap: steady-state per-iteration
            // increment measured over concatenations of worst paths.
            t_iter = 0;
            std::vector<Cycles> alone(sp.paths.size());
            for (std::size_t i = 0; i < sp.paths.size(); ++i)
                alone[i] = evalPath(fa, sp.paths[i], ctx);
            for (std::size_t qi : sp.iterIdx) {
                for (std::size_t pi = 0; pi < sp.paths.size(); ++pi) {
                    Cycles qp = evalConcat(fa, sp.paths[qi],
                                           sp.paths[pi], ctx);
                    t_iter = std::max(t_iter, qp - alone[qi]);
                }
            }
            if (sp.paths.size() <= 24) {
                // Depth-2 prefixes sharpen the steady-state estimate.
                for (std::size_t q1 : sp.iterIdx) {
                    for (std::size_t q2 : sp.iterIdx) {
                        Path pre = sp.paths[q1];
                        pre.insert(pre.end(), sp.paths[q2].begin(),
                                   sp.paths[q2].end());
                        Cycles pre_t = evalPath(fa, pre, ctx);
                        for (const auto &p : sp.paths) {
                            Cycles t = evalConcat(fa, pre, p, ctx);
                            t_iter = std::max(t_iter, t - pre_t);
                        }
                    }
                }
            }
        }

        Cycles fm = static_cast<Cycles>(
                        fa.cache->fmBlocks(loop_id).size()) *
                    ctx.penalty;
        Cycles wcet = t_first +
                      (loop.bound - 1) * (t_iter + params.iterSlack) +
                      fm;
        ctx.loopMemo[key] = wcet;
        return wcet;
    }

    Cycles
    funcWcet(Addr entry, EvalCtx &ctx) const
    {
        auto it = ctx.funcMemo.find(entry);
        if (it != ctx.funcMemo.end())
            return it->second;
        const FuncAnalysis &fa = funcs.at(entry);
        Cycles w = maxPath(fa, fa.body, ctx);
        w += static_cast<Cycles>(fa.cache->fmBlocks(-1).size()) *
             ctx.penalty;
        ctx.funcMemo[entry] = w;
        return w;
    }

    /**
     * Like evalPath, but records one WcetCharge per step. Identical
     * timing walk, so the recorded cycles sum to evalPath's result.
     */
    void
    chargePath(const FuncAnalysis &fa, const Path &path, EvalCtx &ctx,
               std::vector<WcetCharge> &out) const
    {
        Cycles total = 0;
        VisaTimer timer;
        timer.reset();
        const Instruction *prev = nullptr;
        bool prev_load = false;
        auto flush = [&]() {
            total += timer.totalCycles();
            timer.reset();
            prev = nullptr;
            prev_load = false;
        };
        for (const Step &step : path) {
            if (step.kind == Step::LoopSum) {
                flush();
                const Cycles w = loopWcet(fa, step.loopId, ctx);
                const Loop &loop = fa.cfg->loop(step.loopId);
                WcetCharge c;
                c.kind = WcetCharge::Kind::Loop;
                c.startPc = fa.cfg->block(loop.header).startPc;
                c.count = static_cast<std::uint64_t>(loop.bound);
                c.cycles = w;
                out.push_back(c);
                total += w;
                continue;
            }
            if (step.kind == Step::CallSum) {
                flush();
                const Cycles w = funcWcet(step.callee, ctx);
                WcetCharge c;
                c.kind = WcetCharge::Kind::Call;
                c.startPc = step.callee;
                c.cycles = w;
                out.push_back(c);
                total += w;
                continue;
            }
            const Cycles before = total + timer.totalCycles();
            const BasicBlock &bb = fa.cfg->block(step.bb);
            for (Addr pc = bb.startPc; pc < bb.endPc; pc += 4) {
                const Instruction &inst = fa.cfg->program().at(pc);
                TimingRecord rec;
                rec.exLatency = inst.latency();
                rec.imissPenalty =
                    fa.cache->at(pc).cat == CacheCat::AlwaysMiss
                        ? ctx.penalty
                        : 0;
                rec.dmissPenalty = 0;
                rec.loadUseStall =
                    prev_load && prev && inst.dependsOn(*prev);
                if (pc == bb.endPc - 4) {
                    if (inst.isIndirectJump())
                        rec.redirect = true;
                    else if (inst.isCondBranch())
                        rec.redirect = step.redirect;
                }
                timer.consume(rec);
                prev = &inst;
                prev_load = inst.isLoad();
            }
            WcetCharge c;
            c.startPc = bb.startPc;
            c.endPc = bb.endPc;
            c.cycles = total + timer.totalCycles() - before;
            out.push_back(c);
        }
    }

    WcetAttribution
    attribute(MHz f, const DMissProfile *dmiss) const
    {
        EvalCtx ctx;
        ctx.f = f;
        ctx.penalty = penaltyAt(f);

        const FuncAnalysis &fa = funcs.at(mainEntry);
        WcetAttribution out;
        out.frequency = f;
        for (int k = 0; k < numSubtasks; ++k) {
            const ScopePaths &sp =
                fa.subtaskPaths[static_cast<std::size_t>(k)];
            // The argmax path re-derived with the same evaluator; any
            // tie resolves to the first best path, whose time *is* the
            // maxPath() bound either way.
            Cycles best = 0;
            std::size_t bi = 0;
            for (std::size_t i = 0; i < sp.paths.size(); ++i) {
                const Cycles t = evalPath(fa, sp.paths[i], ctx);
                if (t > best) {
                    best = t;
                    bi = i;
                }
            }
            std::vector<WcetCharge> charges;
            if (!sp.paths.empty())
                chargePath(fa, sp.paths[bi], ctx, charges);
            const auto &fm =
                fa.subtaskFmBlocks[static_cast<std::size_t>(k)];
            if (!fm.empty()) {
                WcetCharge c;
                c.kind = WcetCharge::Kind::FirstMiss;
                c.count = fm.size();
                c.cycles = static_cast<Cycles>(fm.size()) * ctx.penalty;
                charges.push_back(c);
            }
            if (dmiss) {
                const auto &mpt = dmiss->missesPerSubtask;
                const std::uint64_t misses =
                    k < static_cast<int>(mpt.size())
                        ? mpt[static_cast<std::size_t>(k)]
                        : 0;
                const auto padded = static_cast<std::uint64_t>(
                    std::ceil(static_cast<double>(misses) *
                              dmiss->safetyFactor));
                if (padded > 0) {
                    WcetCharge c;
                    c.kind = WcetCharge::Kind::DMissPad;
                    c.count = padded;
                    c.cycles = static_cast<Cycles>(padded) * ctx.penalty;
                    charges.push_back(c);
                }
            }
            out.subtaskCharges.push_back(std::move(charges));
        }
        return out;
    }

    WcetReport
    analyze(MHz f, const DMissProfile *dmiss) const
    {
        EvalCtx ctx;
        ctx.f = f;
        ctx.penalty = penaltyAt(f);

        const FuncAnalysis &fa = funcs.at(mainEntry);
        WcetReport report;
        report.frequency = f;
        for (int k = 0; k < numSubtasks; ++k) {
            Cycles w = maxPath(
                fa, fa.subtaskPaths[static_cast<std::size_t>(k)], ctx);
            w += static_cast<Cycles>(
                     fa.subtaskFmBlocks[static_cast<std::size_t>(k)]
                         .size()) *
                 ctx.penalty;
            if (dmiss) {
                const auto &mpt = dmiss->missesPerSubtask;
                std::uint64_t misses =
                    k < static_cast<int>(mpt.size())
                        ? mpt[static_cast<std::size_t>(k)]
                        : 0;
                w += static_cast<Cycles>(
                    std::ceil(static_cast<double>(misses) *
                              dmiss->safetyFactor)) *
                    ctx.penalty;
            }
            report.subtaskCycles.push_back(w);
            report.taskCycles += w;
        }
        return report;
    }
};

WcetAnalyzer::WcetAnalyzer(const Program &prog, AnalyzerParams params)
    : impl_(std::make_unique<Impl>(prog, std::move(params)))
{
}

WcetAnalyzer::~WcetAnalyzer() = default;

WcetReport
WcetAnalyzer::analyze(MHz f, const DMissProfile *dmiss) const
{
    return impl_->analyze(f, dmiss);
}

WcetAttribution
WcetAnalyzer::attribute(MHz f, const DMissProfile *dmiss) const
{
    return impl_->attribute(f, dmiss);
}

const char *
wcetChargeKindName(WcetCharge::Kind kind)
{
    switch (kind) {
      case WcetCharge::Kind::Block:
        return "block";
      case WcetCharge::Kind::Loop:
        return "loop";
      case WcetCharge::Kind::Call:
        return "call";
      case WcetCharge::Kind::FirstMiss:
        return "first_miss";
      case WcetCharge::Kind::DMissPad:
        return "dmiss_pad";
    }
    return "?";
}

int
WcetAnalyzer::numSubtasks() const
{
    return impl_->numSubtasks;
}

const Cfg &
WcetAnalyzer::mainCfg() const
{
    return *impl_->funcs.at(impl_->mainEntry).cfg;
}

const ICacheAnalysis &
WcetAnalyzer::mainCache() const
{
    return *impl_->funcs.at(impl_->mainEntry).cache;
}

Cycles
WcetAnalyzer::missPenalty(MHz f) const
{
    return impl_->penaltyAt(f);
}

DMissProfile
profileDataMisses(const Program &prog, double safety_factor)
{
    MainMemory mem;
    Platform platform;
    MemController memctrl;
    mem.loadProgram(prog);
    SimpleCpu cpu(prog, mem, platform, memctrl);
    cpu.resetForTask();

    int subtasks = 1;
    if (!prog.subtaskStarts.empty()) {
        subtasks = 0;
        for (const auto &[addr, id] : prog.subtaskStarts)
            subtasks = std::max(subtasks, id);
    }
    DMissProfile out;
    out.safetyFactor = safety_factor;
    out.missesPerSubtask.assign(static_cast<std::size_t>(subtasks), 0);

    std::uint64_t last = 0;
    int cur = 0;
    platform.onSubtaskBegin = [&](int s) {
        std::uint64_t m = cpu.dcache().misses();
        out.missesPerSubtask[static_cast<std::size_t>(cur)] += m - last;
        last = m;
        cur = s - 1;
    };
    auto res = cpu.run(2'000'000'000ULL);
    if (res.reason != StopReason::Halted)
        fatal("profileDataMisses: program did not halt");
    out.missesPerSubtask[static_cast<std::size_t>(cur)] +=
        cpu.dcache().misses() - last;
    return out;
}

} // namespace visa
