/**
 * @file
 * The static worst-case timing analyzer (paper §3.3, Figure 1).
 *
 * Pipeline:
 *   1. CFG + call graph construction (wcet/cfg).
 *   2. Static I-cache analysis -> caching categorizations (Table 2).
 *   3. Path-level pipeline evaluation on the VISA timing model: every
 *      path through a loop body / function region is timed on the
 *      exact VisaTimer recurrence with worst-case cache outcomes and
 *      static-branch-prediction penalties on the non-predicted edge.
 *   4. Fix-point loop composition: the first iteration is timed from a
 *      drained pipeline; steady-state iterations use measured
 *      inter-iteration increments over concatenated worst paths
 *      (Healy-style pipeline overlap instead of a drain per
 *      iteration), plus a configurable per-iteration slack.
 *   5. A bottom-up timing tree over loops and functions, and per
 *      sub-task WCETs aligned with the .subtask markers.
 *
 * The D-cache module follows the paper's interim method verbatim:
 * WCET is padded with worst-case data-miss counts obtained from a
 * dynamic trace (§3.3: "data cache misses are modeled by manually
 * padding WCET based on data cache miss information from the dynamic
 * trace"); see profileDataMisses().
 *
 * Output is parameterized by clock frequency: memory stalls are
 * specified in nanoseconds (Table 1), so cycle-level WCET depends on f.
 */

#ifndef VISA_WCET_ANALYZER_HH
#define VISA_WCET_ANALYZER_HH

#include <map>
#include <memory>
#include <vector>

#include "mem/cache.hh"
#include "wcet/cache_analysis.hh"
#include "wcet/cfg.hh"

namespace visa
{

/** Tunables of the analyzer. */
struct AnalyzerParams
{
    CacheParams icache{"icache", 64 * 1024, 4, 64};
    /** Worst-case memory stall time in ns (Table 1). */
    double memStallNs = 100.0;
    /** Path-enumeration cap per scope before the drain fallback. */
    std::size_t maxPaths = 4096;
    /** Cap on paths for pairwise overlap composition. */
    std::size_t maxOverlapPaths = 64;
    /** Extra cycles charged per loop iteration (composition slack). */
    Cycles iterSlack = 0;
};

/** Result of one analyze() call at a given frequency. */
struct WcetReport
{
    MHz frequency = 0;
    /** Per-sub-task WCET in cycles at @ref frequency (index 0 = #1). */
    std::vector<Cycles> subtaskCycles;
    /** Whole-task WCET: the sum of sub-task WCETs (see DESIGN.md). */
    Cycles taskCycles = 0;

    /** Task WCET in microseconds. */
    double
    taskMicros() const
    {
        return static_cast<double>(taskCycles) / frequency;
    }
};

/** Per-sub-task worst-case data-miss counts from a dynamic trace. */
struct DMissProfile
{
    std::vector<std::uint64_t> missesPerSubtask;
    /** Multiplier applied to the padded misses (>= 1 for margin). */
    double safetyFactor = 1.0;
};

/**
 * One charge on a sub-task's WCET bound: a step of the analyzer's
 * worst-case path (or a cache/D-miss pad) with the cycles it
 * contributed. The per-sub-task charges sum *exactly* to the
 * corresponding analyze() sub-task WCET, so profiling tools can join
 * bound-side charges against dynamic block profiles.
 */
struct WcetCharge
{
    enum class Kind { Block, Loop, Call, FirstMiss, DMissPad };
    Kind kind = Kind::Block;
    Addr startPc = 0;     ///< Block: block start; Loop: header;
                          ///< Call: callee entry; pads: 0
    Addr endPc = 0;       ///< Block: exclusive end; others: 0
    std::uint64_t count = 1;    ///< Loop: bound; FirstMiss: blocks;
                                ///< DMissPad: padded misses
    Cycles cycles = 0;
};

/** Printable name of a charge kind ("block", "loop", ...). */
const char *wcetChargeKindName(WcetCharge::Kind kind);

/** Bound-side attribution of every sub-task WCET at one frequency. */
struct WcetAttribution
{
    MHz frequency = 0;
    /** Index 0 = sub-task 1. Sums match analyze().subtaskCycles. */
    std::vector<std::vector<WcetCharge>> subtaskCharges;
};

/** The timing analyzer for one program. */
class WcetAnalyzer
{
  public:
    explicit WcetAnalyzer(const Program &prog, AnalyzerParams params = {});
    ~WcetAnalyzer();

    WcetAnalyzer(const WcetAnalyzer &) = delete;
    WcetAnalyzer &operator=(const WcetAnalyzer &) = delete;

    /**
     * Compute WCETs at core frequency @p f.
     * @param dmiss optional trace-derived data-miss padding
     */
    WcetReport analyze(MHz f, const DMissProfile *dmiss = nullptr) const;

    /**
     * Break every sub-task's WCET bound at @p f into the charges of
     * the analyzer's worst-case path (blocks with pipeline-aware cycle
     * deltas, summarized loops and calls, first-miss and D-miss pads).
     * Per sub-task, the charge cycles sum exactly to the analyze()
     * bound with the same @p dmiss.
     */
    WcetAttribution attribute(MHz f,
                              const DMissProfile *dmiss = nullptr) const;

    /** Number of sub-tasks (1 when the program has no markers). */
    int numSubtasks() const;

    /** The entry function's CFG (diagnostics, tests, examples). */
    const Cfg &mainCfg() const;

    /** The entry function's I-cache categorizations. */
    const ICacheAnalysis &mainCache() const;

    /** Worst-case memory stall cycles at @p f. */
    Cycles missPenalty(MHz f) const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * Run the program once on the simple-fixed processor with cold caches
 * and record per-sub-task data-cache miss counts — the dynamic trace
 * the paper's interim D-cache padding uses.
 */
DMissProfile profileDataMisses(const Program &prog,
                               double safety_factor = 1.0);

} // namespace visa

#endif // VISA_WCET_ANALYZER_HH
