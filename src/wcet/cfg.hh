/**
 * @file
 * Control-flow graph construction for the static timing analyzer
 * (paper §3.3): basic blocks, call graph, dominators, and natural-loop
 * nesting with loop bounds taken from assembler annotations.
 */

#ifndef VISA_WCET_CFG_HH
#define VISA_WCET_CFG_HH

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "isa/program.hh"

namespace visa
{

/** A basic block: a maximal straight-line instruction sequence. */
struct BasicBlock
{
    int id = -1;
    Addr startPc = 0;
    Addr endPc = 0;          ///< exclusive
    /**
     * Successor block ids *within the function*; for a conditional
     * branch, index 0 is the taken edge and index 1 the fall-through.
     */
    std::vector<int> succs;
    std::vector<int> preds;
    /** Callee entry address if this block ends in JAL, else 0. */
    Addr callTarget = 0;
    /** True if the block ends in JR (function return). */
    bool isReturn = false;

    int
    numInsts() const
    {
        return static_cast<int>((endPc - startPc) / 4);
    }
};

/** A natural loop discovered from a back edge. */
struct Loop
{
    int id = -1;
    int header = -1;              ///< header block id
    int backedgeTail = -1;        ///< block whose edge to header closes it
    std::set<int> blocks;         ///< member block ids (incl. header)
    std::uint64_t bound = 0;      ///< max body executions per entry
    int parent = -1;              ///< immediately enclosing loop, -1 = none
    std::vector<int> children;    ///< directly nested loops
};

/** The CFG of one function. */
class Cfg
{
  public:
    /**
     * Build the CFG of the function entered at @p entry. The function
     * extends over all blocks reachable from the entry without
     * following call edges; JAL records a call target, JR ends the
     * function.
     *
     * Fails (FatalError) on: indirect jumps other than `jr ra`-style
     * returns, branches leaving the program, loops without a bound
     * annotation, loops with multiple back edges, or irreducible
     * control flow — the same irregular features hard real-time code
     * avoids (paper §5.3).
     */
    Cfg(const Program &prog, Addr entry);

    const Program &program() const { return *prog_; }
    Addr entry() const { return entry_; }

    const std::vector<BasicBlock> &blocks() const { return blocks_; }
    const BasicBlock &block(int id) const
    {
        return blocks_[static_cast<std::size_t>(id)];
    }
    int entryBlock() const { return entryBlock_; }

    const std::vector<Loop> &loops() const { return loops_; }
    const Loop &loop(int id) const
    {
        return loops_[static_cast<std::size_t>(id)];
    }

    /** Innermost loop containing block @p bid, or -1. */
    int loopOf(int bid) const
    {
        return loopOf_[static_cast<std::size_t>(bid)];
    }

    /** All call targets appearing in this function. */
    const std::set<Addr> &callTargets() const { return callTargets_; }

    /** @return true if block @p a dominates block @p b. */
    bool dominates(int a, int b) const;

    /** Topological order of blocks ignoring back edges. */
    const std::vector<int> &topoOrder() const { return topo_; }

  private:
    void buildBlocks();
    void computeDominators();
    void findLoops();
    void computeTopoOrder();

    const Program *prog_;
    Addr entry_;
    int entryBlock_ = 0;
    std::vector<BasicBlock> blocks_;
    std::map<Addr, int> blockAt_;    ///< startPc -> id
    std::vector<Loop> loops_;
    std::vector<int> loopOf_;
    std::set<Addr> callTargets_;
    std::vector<std::set<int>> dom_;
    std::vector<int> topo_;
};

} // namespace visa

#endif // VISA_WCET_CFG_HH
