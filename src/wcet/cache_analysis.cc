#include "wcet/cache_analysis.hh"

#include "sim/logging.hh"

namespace visa
{

const char *
cacheCatName(CacheCat cat)
{
    switch (cat) {
      case CacheCat::AlwaysHit:  return "h";
      case CacheCat::AlwaysMiss: return "m";
      case CacheCat::FirstMiss:  return "fm";
      case CacheCat::FirstHit:   return "fh";
    }
    return "<bad>";
}

ICacheAnalysis::ICacheAnalysis(
    const Cfg &cfg, const CacheParams &params,
    const std::map<Addr, std::set<Addr>> &callee_footprints)
    : cfg_(cfg),
      blockBytes_(params.blockBytes),
      numSets_(params.sizeBytes / (params.assoc * params.blockBytes)),
      assoc_(params.assoc)
{
    auto setOf = [&](Addr block) {
        return (block / blockBytes_) & (numSets_ - 1);
    };

    // Footprint of a single basic block plus its callee (if any).
    auto bbFootprint = [&](const BasicBlock &bb, std::set<Addr> &out) {
        for (Addr pc = bb.startPc; pc < bb.endPc; pc += 4)
            out.insert(blockAddr(pc));
        if (bb.callTarget) {
            auto it = callee_footprints.find(bb.callTarget);
            if (it == callee_footprints.end())
                fatal("icache analysis: missing footprint for callee "
                      "0x%x (call graph must be processed bottom-up)",
                      bb.callTarget);
            out.insert(it->second.begin(), it->second.end());
        }
    };

    // Scope footprints: -1 = whole function; loop ids = loop members.
    std::map<int, std::set<Addr>> scopeFootprint;
    for (const auto &bb : cfg.blocks())
        bbFootprint(bb, scopeFootprint[-1]);
    for (const auto &loop : cfg.loops())
        for (int b : loop.blocks)
            bbFootprint(cfg.block(b), scopeFootprint[loop.id]);
    footprint_ = scopeFootprint[-1];

    // Conflict counts per scope and cache set.
    std::map<int, std::map<std::uint32_t, std::uint32_t>> conflicts;
    for (const auto &[scope, blocks] : scopeFootprint)
        for (Addr b : blocks)
            ++conflicts[scope][setOf(b)];

    auto persistentIn = [&](int scope, Addr block) {
        return conflicts.at(scope).at(setOf(block)) <= assoc_;
    };

    // Categorize the leading fetch of each memory block per basic
    // block; followers are always-hit.
    for (const auto &bb : cfg.blocks()) {
        Addr prev_block = ~0u;
        for (Addr pc = bb.startPc; pc < bb.endPc; pc += 4) {
            Addr b = blockAddr(pc);
            InstrCategory cat;
            if (b == prev_block) {
                cat.cat = CacheCat::AlwaysHit;
            } else {
                // Scope chain from outermost to innermost.
                std::vector<int> chain{-1};
                {
                    std::vector<int> inner;
                    for (int l = cfg.loopOf(bb.id); l >= 0;
                         l = cfg.loop(l).parent)
                        inner.push_back(l);
                    chain.insert(chain.end(), inner.rbegin(),
                                 inner.rend());
                }
                cat.cat = CacheCat::AlwaysMiss;
                for (int scope : chain) {
                    if (persistentIn(scope, b)) {
                        cat.cat = CacheCat::FirstMiss;
                        cat.fmScope = scope;
                        fmBlocks_[scope].insert(b);
                        break;
                    }
                }
            }
            cats_[pc] = cat;
            prev_block = b;
        }
    }
}

const InstrCategory &
ICacheAnalysis::at(Addr pc) const
{
    auto it = cats_.find(pc);
    if (it == cats_.end())
        panic("icache analysis: no categorization for 0x%x", pc);
    return it->second;
}

const std::set<Addr> &
ICacheAnalysis::fmBlocks(int scope) const
{
    auto it = fmBlocks_.find(scope);
    return it == fmBlocks_.end() ? emptySet_ : it->second;
}

} // namespace visa
