/**
 * @file
 * Seeded random VPISA program generator for the differential
 * verification harness (src/verify). Generated programs are
 * self-terminating by construction:
 *
 *  - every loop is a counted loop with an exact `.loopbound`, so the
 *    WCET analyzer accepts instrumented variants unchanged;
 *  - memory accesses are confined to a private scratch window in the
 *    data segment (naturally aligned per access width), so no access
 *    can alias the program image or the MMIO device window;
 *  - a conservative dynamic-instruction bound is tracked during
 *    generation and generation stops adding loop nests once the
 *    budget is consumed.
 *
 * Two variants of the same seeded body can be produced: the plain
 * variant halts without ever touching MMIO (the architectural streams
 * of both pipelines are then directly comparable — MMIO cycle-counter
 * reads are timing-dependent by design), and the instrumented variant
 * carries the §2.2/§4.3 sub-task snippets (watchdog advance, AET
 * reporting, checksum publication) for the timing oracle.
 */

#ifndef VISA_VERIFY_PROGEN_HH
#define VISA_VERIFY_PROGEN_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "isa/program.hh"

namespace visa::verify
{

/** Instruction-mix profile of a generated program. */
enum class GenProfile
{
    Alu,       ///< integer ALU only (no memory, no loops)
    Branch,    ///< branch-heavy: forward skips and counted loops
    Memory,    ///< load/store-heavy over the scratch window
    Mixed,     ///< everything, including FP and leaf calls
};

/** Lower-case profile name ("alu", "branch", "memory", "mixed"). */
const char *profileName(GenProfile p);

/** Parse a profile name; @return false (and leaves @p out) if unknown. */
bool parseProfile(std::string_view name, GenProfile &out);

/** Generation parameters. */
struct GenParams
{
    GenProfile profile = GenProfile::Mixed;
    /** Top-level body statements (a loop nest is one statement). */
    int statements = 48;
    /** Conservative cap on dynamically executed instructions. */
    std::uint64_t maxDynamic = 20000;
    /**
     * Emit the sub-task instrumentation snippets (watchdog advance,
     * cycle-counter reset, AET report, checksum publication) instead
     * of a bare HALT. Instrumented programs touch MMIO and are meant
     * for the timing oracle, not for lockstep comparison.
     */
    bool instrument = false;
    /** Sub-task count when instrumenting (>= 1). */
    int subtasks = 2;
    /**
     * Allow JAL/JR leaf helper functions. Kept off for instrumented
     * programs by the oracle so the WCET call-graph stays trivial.
     */
    bool allowCalls = true;
};

/** A generated program: source text plus its assembled image. */
struct GeneratedProgram
{
    std::uint64_t seed = 0;
    GenProfile profile = GenProfile::Mixed;
    std::string source;
    Program program;
    /** Conservative bound on dynamically executed instructions. */
    std::uint64_t dynamicBound = 0;
};

/**
 * Generate and assemble one program. Deterministic: the same
 * {seed, params} pair always yields byte-identical source.
 */
GeneratedProgram generate(std::uint64_t seed, const GenParams &params = {});

} // namespace visa::verify

#endif // VISA_VERIFY_PROGEN_HH
