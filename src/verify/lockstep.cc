#include "verify/lockstep.hh"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <vector>

#include "cpu/ooo_cpu.hh"
#include "cpu/simple_cpu.hh"
#include "sim/trace.hh"

namespace visa::verify
{

namespace
{

/** Cycles simulated per scheduling slice. */
constexpr Cycles sliceCycles = 8192;
/** Records accumulated per side before a compare pass. */
constexpr std::size_t chunkRecords = 4096;

/** One program-order architectural step, as recorded by the observer. */
struct StepRecord
{
    Addr pc = 0;
    Addr nextPc = 0;
    Addr effAddr = 0;
    /** Destination value (int zero-extended / FP bit pattern) or
     *  store data; meaningless when no flag below claims it. */
    std::uint64_t value = 0;
    Instruction inst;
    std::uint8_t flags = 0;

    static constexpr std::uint8_t hasIntDest = 1u << 0;
    static constexpr std::uint8_t hasFpDest = 1u << 1;
    static constexpr std::uint8_t fccSet = 1u << 2;
    static constexpr std::uint8_t isStore = 1u << 3;
    static constexpr std::uint8_t isMmio = 1u << 4;
};

std::uint64_t
fpBits(double d)
{
    std::uint64_t bits;
    std::memcpy(&bits, &d, 8);
    return bits;
}

/** Appends every executed instruction to a buffer. */
class Recorder final : public ExecObserver
{
  public:
    void
    onStep(const ExecInfo &info, const ArchState &post) override
    {
        StepRecord r;
        r.pc = info.pc;
        r.nextPc = info.nextPc;
        r.inst = info.inst;
        if (post.fcc)
            r.flags |= StepRecord::fccSet;
        if (info.isMmio)
            r.flags |= StepRecord::isMmio;
        if (info.isMem) {
            r.effAddr = info.effAddr;
            if (!info.isLoad) {
                r.flags |= StepRecord::isStore;
                // Stores do not modify registers, so the data operand
                // is still live in the post state.
                r.value = info.inst.op == Opcode::SDC1
                              ? fpBits(post.fpRegs[info.inst.rt])
                              : post.readInt(info.inst.rt);
            }
        }
        if (int d = info.inst.destIntReg(); d >= 0) {
            r.flags |= StepRecord::hasIntDest;
            r.value = post.readInt(d);
        } else if (int f = info.inst.destFpReg(); f >= 0) {
            r.flags |= StepRecord::hasFpDest;
            r.value = fpBits(post.fpRegs[f]);
        }
        buf.push_back(r);
    }

    std::vector<StepRecord> buf;
};

/**
 * MMIO cycle-counter loads are timing-dependent between the machines
 * by design; everything else must match bit for bit.
 */
bool
recordsMatch(const StepRecord &a, const StepRecord &b)
{
    if (a.pc != b.pc || a.nextPc != b.nextPc || !(a.inst == b.inst) ||
        a.flags != b.flags || a.effAddr != b.effAddr)
        return false;
    const bool mmioLoad = (a.flags & StepRecord::isMmio) &&
                          !(a.flags & StepRecord::isStore);
    return mmioLoad || a.value == b.value;
}

/** One machine plus its recorder and private event tracer. */
struct Side
{
    Side(const Program &prog, const char *label) : name(label)
    {
        mem.loadProgram(prog);
    }

    template <typename CpuT>
    void
    makeCpu(const Program &prog, bool blockCache)
    {
        auto c = std::make_unique<CpuT>(prog, mem, platform, memctrl);
        cpu = std::move(c);
        cpu->resetForTask();
        cpu->execCore().setBlockCacheEnabled(blockCache);
        cpu->execCore().setObserver(&rec);
    }

    /** Run until @p chunk records are buffered, halt, or @p cap. */
    void
    fill(std::uint64_t cap)
    {
        while (!halted && rec.buf.size() < chunkRecords &&
               consumed + rec.buf.size() <= cap) {
            ScopedTracer st(tracer);
            if (cpu->run(sliceCycles).reason == StopReason::Halted)
                halted = true;
        }
    }

    /** Discard @p n compared records, keeping a context window. */
    void
    consume(std::size_t n, std::size_t keep)
    {
        for (std::size_t i = n >= keep ? n - keep : 0; i < n; ++i)
            history.push_back(rec.buf[i]);
        while (history.size() > keep)
            history.pop_front();
        rec.buf.erase(rec.buf.begin(),
                      rec.buf.begin() + static_cast<std::ptrdiff_t>(n));
        consumed += n;
    }

    const char *name;
    MainMemory mem;
    Platform platform;
    MemController memctrl;
    std::unique_ptr<Cpu> cpu;
    Recorder rec;
    Tracer tracer{1 << 12};
    std::deque<StepRecord> history;
    std::uint64_t consumed = 0;
    bool halted = false;
};

void
appendf(std::string &out, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

void
appendf(std::string &out, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    char buf[512];
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    out += buf;
}

void
describeRecord(std::string &out, std::uint64_t index, const StepRecord &r)
{
    appendf(out, "  #%-8" PRIu64 " 0x%08X  %-28s", index, r.pc,
            disassemble(r.inst, r.pc).c_str());
    if (r.flags & StepRecord::isStore)
        appendf(out, " [0x%08X] <- 0x%016" PRIX64, r.effAddr, r.value);
    else if (r.flags & StepRecord::hasFpDest)
        appendf(out, " f%d <- 0x%016" PRIX64, r.inst.rd, r.value);
    else if (r.flags & StepRecord::hasIntDest)
        appendf(out, " -> 0x%08X", static_cast<Word>(r.value));
    if (r.flags & StepRecord::fccSet)
        out += " fcc=1";
    if (r.flags & StepRecord::isMmio)
        out += " (mmio)";
    out += '\n';
}

void
appendContext(std::string &out, const Side &s, std::size_t upTo)
{
    appendf(out, "%s stream (program order):\n", s.name);
    std::uint64_t base = s.consumed - s.history.size();
    std::uint64_t idx = base;
    for (const StepRecord &r : s.history)
        describeRecord(out, idx++, r);
    idx = s.consumed;
    for (std::size_t i = 0; i < upTo && i < s.rec.buf.size(); ++i)
        describeRecord(out, idx++, s.rec.buf[i]);
}

void
appendTraceTail(std::string &out, const Side &s, int tail)
{
    appendf(out, "%s trace tail:\n", s.name);
    const std::size_t n = s.tracer.size();
    const std::size_t from =
        n > static_cast<std::size_t>(tail) ? n - static_cast<std::size_t>(tail)
                                           : 0;
    for (std::size_t i = from; i < n; ++i) {
        const TraceEvent &e = s.tracer.at(i);
        const EventKindInfo &info = eventKindInfo(e.kind);
        appendf(out, "  [%10" PRIu64 "] %s.%s a=0x%" PRIX64 " b=%" PRIu64
                     " c=%" PRIu64 "\n",
                e.cycle, info.category, info.name, e.a, e.b, e.c);
    }
}

std::string
divergenceReport(const Side &ref, const Side &cand, std::size_t at,
                 const LockstepOptions &opts, const char *what)
{
    std::string out;
    appendf(out, "lockstep divergence: %s\n", what);
    appendf(out, "  first differing instruction: #%" PRIu64 "\n",
            ref.consumed + at);
    const std::size_t upTo =
        at + static_cast<std::size_t>(opts.reportWindow);
    appendContext(out, ref, upTo);
    appendContext(out, cand, upTo);
    appendTraceTail(out, cand, opts.traceTail);
    appendTraceTail(out, ref, opts.traceTail);
    return out;
}

/** Diff final architectural + memory + platform state of both rigs. */
bool
compareFinalState(Side &ref, Side &cand, const LockstepOptions &opts,
                  std::string &report)
{
    const ArchState &a = ref.cpu->arch();
    const ArchState &b = cand.cpu->arch();
    if (a.pc != b.pc)
        appendf(report, "final pc: %s=0x%08X %s=0x%08X\n", ref.name, a.pc,
                cand.name, b.pc);
    for (int r = 0; r < numIntRegs; ++r)
        if (a.readInt(r) != b.readInt(r))
            appendf(report, "final r%d: %s=0x%08X %s=0x%08X\n", r, ref.name,
                    a.readInt(r), cand.name, b.readInt(r));
    for (int f = 0; f < numFpRegs; ++f)
        if (fpBits(a.fpRegs[f]) != fpBits(b.fpRegs[f]))
            appendf(report,
                    "final f%d: %s=0x%016" PRIX64 " %s=0x%016" PRIX64 "\n",
                    f, ref.name, fpBits(a.fpRegs[f]), cand.name,
                    fpBits(b.fpRegs[f]));
    if (a.fcc != b.fcc)
        appendf(report, "final fcc: %s=%d %s=%d\n", ref.name, a.fcc,
                cand.name, b.fcc);

    if (opts.compareMemory) {
        static const std::uint8_t zeros[4096] = {};
        std::vector<Addr> bases = ref.mem.pageBases();
        for (Addr base : cand.mem.pageBases())
            if (!ref.mem.peekPage(base))
                bases.push_back(base);
        for (Addr base : bases) {
            const std::uint8_t *pa = ref.mem.peekPage(base);
            const std::uint8_t *pb = cand.mem.peekPage(base);
            if (!pa)
                pa = zeros;
            if (!pb)
                pb = zeros;
            const std::size_t n =
                static_cast<std::size_t>(MainMemory::pageBytes());
            if (std::memcmp(pa, pb, n) == 0)
                continue;
            for (std::size_t i = 0; i < n; ++i)
                if (pa[i] != pb[i]) {
                    appendf(report,
                            "memory [0x%08X]: %s=0x%02X %s=0x%02X\n",
                            base + static_cast<Addr>(i), ref.name, pa[i],
                            cand.name, pb[i]);
                    break;    // one sample byte per differing page
                }
        }
    }

    if (ref.platform.lastChecksum() != cand.platform.lastChecksum() ||
        ref.platform.checksumReported() != cand.platform.checksumReported())
        appendf(report, "checksum: %s=0x%08X(%d) %s=0x%08X(%d)\n", ref.name,
                ref.platform.lastChecksum(), ref.platform.checksumReported(),
                cand.name, cand.platform.lastChecksum(),
                cand.platform.checksumReported());
    if (ref.platform.consoleOutput() != cand.platform.consoleOutput())
        appendf(report, "console output differs (%zu vs %zu bytes)\n",
                ref.platform.consoleOutput().size(),
                cand.platform.consoleOutput().size());
    return report.empty();
}

} // namespace

LockstepResult
runLockstep(const Program &prog, const LockstepOptions &opts)
{
    LockstepResult res;

    Side ref(prog, "reference(simple)");
    ref.makeCpu<SimpleCpu>(prog, opts.refBlockCache);
    Side cand(prog, "candidate(complex)");
    cand.makeCpu<OooCpu>(prog, opts.candBlockCache);
    if (opts.prepareComplex)
        opts.prepareComplex(static_cast<OooCpu &>(*cand.cpu));

    const std::size_t keep = static_cast<std::size_t>(opts.reportWindow);
    // Guards against a livelocked pipeline that burns cycles without
    // retiring anything (a real bug class the cap alone cannot catch:
    // no records accumulate, so the instruction cap never trips).
    int stalledIterations = 0;

    for (;;) {
        ref.fill(opts.maxInstructions);
        cand.fill(opts.maxInstructions);

        const std::size_t n =
            std::min(ref.rec.buf.size(), cand.rec.buf.size());
        for (std::size_t i = 0; i < n; ++i) {
            if (!recordsMatch(ref.rec.buf[i], cand.rec.buf[i])) {
                res.diverged = true;
                res.instructions = ref.consumed + i;
                // Slide the context window up to the mismatch so the
                // report shows `reportWindow` records on each side of
                // it, not the whole buffered chunk.
                ref.consume(i, keep);
                cand.consume(i, keep);
                res.report = divergenceReport(ref, cand, 0, opts,
                                              "architectural streams differ");
                return res;
            }
        }
        ref.consume(n, keep);
        cand.consume(n, keep);
        res.instructions = ref.consumed;
        stalledIterations = n == 0 ? stalledIterations + 1 : 0;
        if (stalledIterations > 4096) {
            res.timedOut = true;
            appendf(res.report,
                    "lockstep stall: no forward progress after %" PRIu64
                    " instructions (ref %s, cand %s)\n",
                    res.instructions, ref.halted ? "halted" : "running",
                    cand.halted ? "halted" : "running");
            return res;
        }

        const bool refDrained = ref.halted && ref.rec.buf.empty();
        const bool candDrained = cand.halted && cand.rec.buf.empty();
        if (refDrained && candDrained)
            break;
        // One side halted with a fully compared stream while the other
        // still has (or will produce) more instructions: stream-length
        // divergence.
        if (refDrained && !cand.rec.buf.empty()) {
            res.diverged = true;
            res.report = divergenceReport(
                ref, cand, 0, opts,
                "candidate executed past the reference halt");
            return res;
        }
        if (candDrained && !ref.rec.buf.empty()) {
            res.diverged = true;
            res.report = divergenceReport(
                ref, cand, 0, opts,
                "reference executed past the candidate halt");
            return res;
        }
        if ((!ref.halted &&
             ref.consumed + ref.rec.buf.size() > opts.maxInstructions) ||
            (!cand.halted &&
             cand.consumed + cand.rec.buf.size() > opts.maxInstructions)) {
            res.timedOut = true;
            appendf(res.report,
                    "lockstep timeout after %" PRIu64 " instructions\n",
                    res.instructions);
            return res;
        }
    }

    std::string finalDiff;
    if (!compareFinalState(ref, cand, opts, finalDiff)) {
        res.diverged = true;
        res.report = "lockstep divergence: final state differs\n" + finalDiff;
        appendTraceTail(res.report, cand, opts.traceTail);
        return res;
    }

    res.equivalent = true;
    return res;
}

} // namespace visa::verify
