/**
 * @file
 * Fault-injection matrix for the complex core (DESIGN.md §11).
 *
 * The VISA argument is that the complex core may misbehave arbitrarily
 * and the system stays safe: the watchdog bounds its *timing* and the
 * simple-mode fallback bounds its *function*. This module tests that
 * argument mechanically. FaultInjector is a FaultPort (cpu/
 * fault_port.hh) that injects one seeded transient fault — chosen from
 * a matrix of distinct microarchitectural fault classes — into an
 * OooCpu run, and the campaign driver (runInjectProgram /
 * runInjectCampaign) classifies what happened:
 *
 *  - DetectedWatchdog: a checkpoint missed and the runtime recovered
 *    (the paper's detection path; execution traps — wild PC, bad
 *    opcode — are folded into this bucket, since a real machine check
 *    enters the same missed-checkpoint recovery).
 *  - DetectedLockstep: timing stayed inside the PETs, but a dual-rig
 *    architectural lockstep against the in-order reference diverges —
 *    the fault is functionally visible to an external checker.
 *  - SilentBenign: neither detector fires and the final checksum
 *    matches the golden run (the fault was masked: dead register,
 *    overwritten value, ...).
 *  - SilentCorruption: neither detector fires and the checksum is
 *    wrong (or the deadline was missed) — a silent-data-corruption
 *    escape. The campaign extracts these as corpus repro cases.
 *
 * Fault classes cover the structures the paper's "unsafe processor"
 * abstraction gives up on verifying: register-file/ROB payload bits,
 * load/store values and addresses, branch direction and target, the
 * block cache's decoded records, and the event-driven scheduler's
 * wakeup logic. Simple mode takes no faults by design — it is the
 * trusted fallback the safety argument leans on.
 *
 * Everything here is deterministic: a {class, seed} pair names one
 * fault in one generated program, regardless of thread count.
 */

#ifndef VISA_VERIFY_INJECT_HH
#define VISA_VERIFY_INJECT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/fault_port.hh"
#include "sim/trace.hh"
#include "verify/progen.hh"

namespace visa::verify
{

/** The fault matrix: one class per attacked structure. */
enum class FaultClass : int
{
    /** Flip one bit of an instruction's integer destination register
     *  after writeback (register file / ROB payload upset). */
    RegBitFlip,
    /** Flip one bit of a load's result (load/store-queue data upset). */
    LoadValue,
    /** Corrupt a load's effective address (AGU upset): the value is
     *  re-read from the corrupted address. */
    LoadAddr,
    /** Wild store: the store's data is *also* written to a corrupted
     *  address (text and MMIO are avoided so the run stays decodable). */
    StoreAddr,
    /** Invert a conditional branch's resolved direction. */
    BranchDir,
    /** Redirect a direct jump to the fall-through path (target-field
     *  upset in the decoded record / BTB). */
    BranchTarget,
    /** Flip an immediate bit in a decoded ALU record and replay the
     *  operation (block-cache decoded-record corruption). */
    DecodeImm,
    /** Timing-only: a scheduler entry's wakeup is lost and re-asserted
     *  thousands of cycles late (stuck select logic). Architecturally
     *  invisible — only the watchdog can catch it. */
    WakeupStall,
    /** The legacy deliberate bug: subword signed loads (LB/LH)
     *  zero-extend instead of sign-extending. Persistent by
     *  convention; replaces OooCpu::testInjectLoadExtBug. */
    LoadExt,
};

inline constexpr int numFaultClasses = static_cast<int>(FaultClass::LoadExt) + 1;

/** Stable lower-case name (CLI + report key). */
const char *faultClassName(FaultClass cls);

/** Parse a class name; @return false if unknown. */
bool parseFaultClass(const char *name, FaultClass &out);

/** One fault to inject. */
struct FaultSpec
{
    FaultClass cls = FaultClass::RegBitFlip;
    /** Seeds the corrupted bit/address choice. */
    std::uint64_t seed = 0;
    /**
     * Arm after this many executed instructions; the first *eligible*
     * instruction at or after the trigger is corrupted.
     */
    std::uint64_t triggerInstr = 0;
    /** Alternative arming point: first execution at/after this cycle
     *  (0 = instruction trigger only). */
    Cycles triggerCycle = 0;
    /** Corrupt every eligible instruction once armed (a permanent
     *  defect) instead of a one-shot transient. */
    bool persistent = false;
};

/** What the injector actually did. */
struct FaultRecord
{
    bool fired = false;
    std::uint64_t seq = 0;      ///< ROB sequence of the first corruption
    Addr pc = 0;                ///< pc of the corrupted instruction
    Cycles cycle = 0;           ///< complex-core cycle of the corruption
    std::uint64_t applied = 0;  ///< corruption count (persistent > 1)
};

/**
 * The FaultPort implementation. Attach with OooCpu::setFaultPort();
 * detach (or destroy the cpu first) before the injector dies.
 */
class FaultInjector final : public FaultPort
{
  public:
    explicit FaultInjector(const FaultSpec &spec);

    void onExecute(ExecCore &core, MainMemory &mem, ExecInfo &info,
                   std::uint64_t seq, Cycles cycle) override;
    Cycles onIssueReady(std::uint64_t seq, Cycles cycle) override;

    const FaultSpec &spec() const { return spec_; }
    const FaultRecord &record() const { return rec_; }

    /** Forget all state (for back-to-back runs on one injector). */
    void reset();

  private:
    bool armed(Cycles cycle) const;
    /** @return true if the fault was applied to this instruction. */
    bool apply(ExecCore &core, MainMemory &mem, ExecInfo &info);

    FaultSpec spec_;
    FaultRecord rec_;
    std::uint64_t executed_ = 0;
};

/** Convenience: the legacy load-extension bug as a persistent fault. */
FaultSpec loadExtBugSpec();

// ---------------------------------------------------------------------
// Campaign driver
// ---------------------------------------------------------------------

/** Classification of one injected run (see the file comment). */
enum class InjectOutcome : int
{
    NoTrigger,           ///< the fault never found an eligible victim
    DetectedWatchdog,    ///< missed checkpoint / trap; runtime recovered
    DetectedLockstep,    ///< architectural divergence vs the reference
    SilentBenign,        ///< undetected, checksum still correct
    SilentCorruption,    ///< undetected, wrong checksum or deadline miss
};

const char *injectOutcomeName(InjectOutcome o);

/** Knobs of one campaign run (defaults mirror the timing oracle's). */
struct InjectRunOptions
{
    GenProfile profile = GenProfile::Mixed;
    int statements = 48;
    std::uint64_t maxInstructions = 2'000'000;
    /**
     * Deadline = slack * (ovhd + WCET_task(fRec)) — the oracle's
     * provisioning recipe. Slightly looser than the oracle's 1.10:
     * the restart admission bound must absorb the snapshot-restore
     * term on top of EQ 4, and generated tasks are only a few
     * microseconds long.
     */
    double deadlineSlack = 1.25;
    MHz fRec = 600;
    double ovhdSeconds = 0.5e-6;
    /**
     * Runtime overhead model, scaled to the microsecond-sized
     * generated tasks (the production defaults assume real tasks and
     * would make EQ 4 infeasible here, parking every run in safe
     * mode with nothing to inject into).
     */
    Cycles dvsSoftwareCycles = 100;
    Cycles drainBudgetCycles = 128;
    /** Restart snapshot-restore cost charged per recovery. */
    Cycles restartRestoreCycles = 128;
    /**
     * Force an early watchdog expiry in the injected run (the
     * runtime's forceNextMiss hook): harnesses that must exercise the
     * detection + restart path deterministically regardless of whether
     * the fault itself overruns a PET.
     */
    bool forceMiss = false;
    /** Inject at the first eligible instruction instead of a
     *  seed-derived point (pairs with forceMiss for demo/trace runs). */
    bool triggerFirst = false;
    /**
     * Also run the FlexStep-style paired-core vote (chip/paired.hh) on
     * every fired fault: a spare core re-executes the plain twin in
     * simple mode and the boundary states are compared. Measures the
     * spare-core detector's coverage side by side with the watchdog
     * and the per-instruction lockstep checker.
     */
    bool pairedCheck = false;
    /**
     * Optional caller-owned tracer installed around the injected
     * (phase A) run; receives the fault_inject / fault_detect /
     * recovery_restart events plus whatever its mask admits.
     */
    Tracer *trace = nullptr;
};

/** Everything one injected run produced. */
struct InjectRunResult
{
    std::uint64_t seed = 0;
    FaultClass cls = FaultClass::RegBitFlip;
    InjectOutcome outcome = InjectOutcome::NoTrigger;
    FaultRecord fault;

    /** Watchdog path: cycles from corruption to the watchdog fire. */
    Cycles detectionLatencyCycles = 0;
    /** Lockstep path: instructions the checker ran before diverging. */
    std::uint64_t lockstepInstructions = 0;

    // deadline economics of the injected run
    double deadlineSeconds = 0.0;
    double completionSeconds = 0.0;
    bool deadlineMet = true;
    int restarts = 0;

    Word checksum = 0;
    Word goldenChecksum = 0;

    /** Block-profile join: entry pc and dynamic entry count of the
     *  basic block containing the corruption site (0 when no fault). */
    Addr blockPc = 0;
    std::uint64_t blockEntries = 0;

    /** Paired-core vote (only with InjectRunOptions::pairedCheck):
     *  whether the vote ran on this fault, and whether it detected. */
    bool pairedChecked = false;
    bool pairedDetected = false;

    /** Generated source (kept so escapes can be saved as repros). */
    std::string source;
    /** Divergence / failure detail, empty otherwise. */
    std::string report;
};

/**
 * Inject one fault of class @p cls into the seeded generated program
 * and classify the outcome. The victim instruction index is derived
 * deterministically from {seed, cls} and the golden run's dynamic
 * instruction count.
 */
InjectRunResult runInjectProgram(std::uint64_t seed, FaultClass cls,
                                 const InjectRunOptions &opts = {});

/** Per-class aggregation of a campaign. */
struct InjectClassCoverage
{
    FaultClass cls = FaultClass::RegBitFlip;
    std::uint64_t programs = 0;
    std::uint64_t fired = 0;
    std::uint64_t noTrigger = 0;
    std::uint64_t watchdog = 0;
    std::uint64_t lockstep = 0;
    std::uint64_t silentBenign = 0;
    std::uint64_t silentCorruption = 0;

    // watchdog detection latency, cycles (over watchdog detections)
    Cycles latencyMin = 0;
    Cycles latencyMax = 0;
    double latencySum = 0.0;

    // deadline cost: completion / deadline (over fired runs)
    double deadlineFracSum = 0.0;
    double deadlineFracMax = 0.0;
    std::uint64_t restarts = 0;

    // paired-core vote (over runs where the vote ran)
    std::uint64_t pairedChecked = 0;
    std::uint64_t pairedDetected = 0;

    /** Fold one run into the aggregate. */
    void add(const InjectRunResult &r);
};

/** A whole campaign's outcome. */
struct InjectCampaignResult
{
    std::uint64_t programs = 0;    ///< injected runs performed
    std::vector<InjectClassCoverage> classes;
    /** Full results of every SilentCorruption escape, scan order. */
    std::vector<InjectRunResult> escapes;
};

/**
 * Run @p count injected programs starting at @p first_seed over
 * @p classes (round-robin by scan index), in parallel batches with a
 * deterministic merge: the same {first_seed, count, classes, opts}
 * yields the same tables and the same escapes for any thread count.
 * @p progress, if non-null, is called after each batch with
 * (done, total).
 */
InjectCampaignResult
runInjectCampaign(std::uint64_t first_seed, std::uint64_t count,
                  const std::vector<FaultClass> &classes,
                  const InjectRunOptions &opts = {},
                  void (*progress)(std::uint64_t, std::uint64_t) = nullptr);

/** Render the per-class coverage table (the campaign's report). */
std::string formatCoverageTable(const InjectCampaignResult &res);

} // namespace visa::verify

#endif // VISA_VERIFY_INJECT_HH
