/**
 * @file
 * Greedy instruction-deletion minimization of failing generated
 * programs (delta debugging over assembly source lines). A candidate
 * must still assemble and still fail the caller's predicate to be
 * accepted; candidates that stop assembling (dangling labels, missing
 * operands) or stop terminating (removed loop decrements — the
 * predicate sees a timeout, not a failure) are rejected, so the
 * minimizer cannot turn a real divergence into an artifact.
 */

#ifndef VISA_VERIFY_MINIMIZE_HH
#define VISA_VERIFY_MINIMIZE_HH

#include <functional>
#include <string>

#include "isa/program.hh"

namespace visa::verify
{

/**
 * Predicate: does the assembled candidate still exhibit the failure?
 * Must return false for candidates that merely time out.
 */
using FailurePredicate = std::function<bool(const Program &)>;

/** Minimization outcome. */
struct MinimizeResult
{
    /** Minimized source (the original if nothing could be removed). */
    std::string source;
    /** Text-segment instructions in the minimized program. */
    std::size_t instructions = 0;
    /** Candidates tried (diagnostics). */
    int candidates = 0;
};

/**
 * Shrink @p source with ddmin-style chunk removal (halving chunk sizes
 * down to single lines, restarting after any successful removal) until
 * no single removable line can be dropped. Labels, directives, and
 * data lines are preserved; only instruction lines are candidates.
 */
MinimizeResult minimizeSource(const std::string &source,
                              const FailurePredicate &stillFails);

} // namespace visa::verify

#endif // VISA_VERIFY_MINIMIZE_HH
