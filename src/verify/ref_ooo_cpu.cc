/**
 * @file
 * Frozen per-cycle reference stepper for the complex processor. See
 * ref_ooo_cpu.hh: this is the pre-event-driven OooCpu implementation,
 * preserved verbatim for the timing-equivalence cross-check. Do not
 * "improve" it — its value is that it stays the historical model.
 */

#include "verify/ref_ooo_cpu.hh"

#include "sim/logging.hh"

namespace visa::verify
{

RefOooCpu::RefOooCpu(const Program &prog, MainMemory &mem,
                     Platform &platform, MemController &memctrl,
                     const OooParams &params)
    : Cpu(prog, mem, platform, memctrl,
          CacheParams{"icache", 64 * 1024, 4, 64},
          CacheParams{"dcache", 64 * 1024, 4, 64}),
      params_(params),
      gshare_(params.gshareLog2),
      indirect_(params.indirectLog2)
{
    lastIntWriter_.fill(-1);
    lastFpWriter_.fill(-1);
}

void
RefOooCpu::resetForTask()
{
    Cpu::resetForTask();
    cycle_ = 0;
    ticked_ = 0;
    seqCounter_ = 0;
    fetchQueue_.clear();
    rob_.clear();
    lastIntWriter_.fill(-1);
    lastFpWriter_.fill(-1);
    lastFccWriter_ = -1;
    fetchReadyCycle_ = 0;
    fetchBlockedSeq_ = -1;
    lastFetchBlock_ = ~0u;
    haltFetched_ = false;
    mispredicts_ = 0;
    iqCount_ = 0;
    lsqCount_ = 0;
    timer_.reset();
    timerBase_ = 0;
    prevWasLoad_ = false;
    simpleFetchGroup_ = 0;
    memctrl_.reset();
    unissuedSeqs_.clear();
    unissuedStoreSeqs_.clear();
    inflightStores_.clear();
    missFillTimes_.clear();
    lastMshrTraced_ = -1;
}

void
RefOooCpu::flushCachesAndPredictors()
{
    Cpu::flushCachesAndPredictors();
    gshare_.flush();
    indirect_.flush();
}

Platform::TickResult
RefOooCpu::tickTo(Cycles to)
{
    if (to <= ticked_)
        return {};
    auto res = platform_.tickN(to - ticked_);
    if (res.expired)
        res.offset += ticked_;
    ticked_ = to;
    return res;
}

void
RefOooCpu::advanceIdle(Cycles n)
{
    cycle_ += n;
    if (mode_ == Mode::Simple) {
        timerBase_ = cycle_;
        timer_.reset();
        prevWasLoad_ = false;
    }
    tickTo(cycle_);
    syncActivityCycles();
}

bool
RefOooCpu::olderStoresIssued(const RobEntry &load) const
{
    return unissuedStoreSeqs_.empty() ||
           *unissuedStoreSeqs_.begin() >= load.seq;
}

bool
RefOooCpu::overlapsOlderStore(const RobEntry &load) const
{
    const Addr lo = load.info.effAddr;
    const Addr hi = lo + static_cast<Addr>(load.info.inst.memBytes());
    for (const auto &s : inflightStores_) {
        if (s.seq >= load.seq)
            break;
        if (s.lo < hi && lo < s.hi)
            return true;
    }
    return false;
}

int
RefOooCpu::outstandingLoadMisses()
{
    std::erase_if(missFillTimes_,
                  [this](Cycles c) { return c <= cycle_; });
    return static_cast<int>(missFillTimes_.size());
}

void
RefOooCpu::fetchStage()
{
    if (haltFetched_ || fetchBlockedSeq_ >= 0 || cycle_ < fetchReadyCycle_)
        return;

    int n = 0;
    bool block_end = false;
    bool charged_icache = false;
    while (n < params_.fetchWidth && !haltFetched_ && !block_end &&
           static_cast<int>(fetchQueue_.size()) < params_.fetchQueueSize) {
        const Addr pc = core_.state().pc;
        const Addr blk = pc / icache_.blockBytes();
        if (blk != lastFetchBlock_) {
            bool hit = icache_.access(pc, false);
            activity_.add(Unit::ICache);
            charged_icache = true;
            lastFetchBlock_ = blk;
            if (!hit) {
                if (tracer_) [[unlikely]]
                    tracer_->record(EventKind::IcacheMiss, cycle_, pc);
                fetchReadyCycle_ = cycle_ + missPenalty();
                break;
            }
        } else if (!charged_icache) {
            activity_.add(Unit::ICache);
            charged_icache = true;
        }

        ExecInfo info = core_.step(false);
        FetchEntry fe;
        fe.info = info;
        fe.seq = seqCounter_++;
        fe.fetchCycle = cycle_;

        const Instruction &inst = info.inst;
        if (inst.isCondBranch()) {
            activity_.add(Unit::Bpred);
            bool pred = gshare_.predict(pc);
            gshare_.update(pc, info.taken);
            if (pred != info.taken) {
                fe.mispredicted = true;
                ++mispredicts_;
                fetchBlockedSeq_ = static_cast<std::int64_t>(fe.seq);
                block_end = true;
            } else if (info.taken) {
                block_end = true;
            }
        } else if (inst.isIndirectJump()) {
            activity_.add(Unit::Bpred);
            Addr pred_target = indirect_.predict(pc);
            indirect_.update(pc, info.nextPc);
            if (pred_target != info.nextPc) {
                fe.mispredicted = true;
                ++mispredicts_;
                fetchBlockedSeq_ = static_cast<std::int64_t>(fe.seq);
            }
            block_end = true;
        } else if (inst.isDirectJump()) {
            block_end = true;
        }

        if (tracer_) [[unlikely]] {
            tracer_->record(EventKind::Fetch, cycle_, pc, fe.seq);
            if (fe.mispredicted)
                tracer_->record(EventKind::BranchMispredict, cycle_, pc,
                                fe.seq, info.taken);
        }

        if (info.halted)
            haltFetched_ = true;
        activity_.add(Unit::FetchQueue);
        fetchQueue_.push_back(fe);
        ++n;
    }
}

void
RefOooCpu::dispatchStage()
{
    int n = 0;
    while (n < params_.dispatchWidth && !fetchQueue_.empty()) {
        const FetchEntry &fe = fetchQueue_.front();
        if (fe.fetchCycle + static_cast<Cycles>(params_.frontLatency) >
            cycle_)
            break;
        if (robFull())
            break;
        if (iqOccupancy() >= params_.iqSize)
            break;
        if (fe.info.isMem && !fe.info.isMmio &&
            lsqOccupancy() >= params_.lsqSize)
            break;

        RobEntry e;
        e.info = fe.info;
        e.seq = fe.seq;
        e.dispatchCycle = cycle_;
        e.mispredicted = fe.mispredicted;

        int k = 0;
        const Instruction &inst = e.info.inst;
        for (int r : inst.srcIntRegs()) {
            if (r > 0 && lastIntWriter_[static_cast<std::size_t>(r)] >= 0)
                e.srcProducers[static_cast<std::size_t>(k++)] =
                    lastIntWriter_[static_cast<std::size_t>(r)];
        }
        for (int r : inst.srcFpRegs()) {
            if (r >= 0 && lastFpWriter_[static_cast<std::size_t>(r)] >= 0)
                e.srcProducers[static_cast<std::size_t>(k++)] =
                    lastFpWriter_[static_cast<std::size_t>(r)];
        }
        if (inst.readsFcc() && lastFccWriter_ >= 0)
            e.srcProducers[static_cast<std::size_t>(k++)] = lastFccWriter_;

        int di = inst.destIntReg();
        if (di >= 0)
            lastIntWriter_[static_cast<std::size_t>(di)] =
                static_cast<std::int64_t>(e.seq);
        int df = inst.destFpReg();
        if (df >= 0)
            lastFpWriter_[static_cast<std::size_t>(df)] =
                static_cast<std::int64_t>(e.seq);
        if (inst.writesFcc())
            lastFccWriter_ = static_cast<std::int64_t>(e.seq);

        activity_.add(Unit::RenameMap);
        activity_.add(Unit::ActiveList);
        if (e.info.isMem && !e.info.isMmio)
            activity_.add(Unit::Lsq);

        rob_.push_back(e);
        unissuedSeqs_.push_back(e.seq);
        if (e.info.isMem && !e.info.isLoad && !e.info.isMmio) {
            unissuedStoreSeqs_.insert(e.seq);
            const Addr lo = e.info.effAddr;
            inflightStores_.push_back(
                {e.seq, lo,
                 lo + static_cast<Addr>(e.info.inst.memBytes())});
        }
        ++iqCount_;
        if (e.info.isMem && !e.info.isMmio)
            ++lsqCount_;
        fetchQueue_.pop_front();
        ++n;
    }
}

void
RefOooCpu::issueStage()
{
    // The historical polling scan: walk every dispatched-but-unissued
    // entry in program order, re-deriving readiness from sourcesReady()
    // each cycle.
    int issued = 0;
    int misses_outstanding = outstandingLoadMisses();
    std::size_t keep = 0;
    const std::size_t n = unissuedSeqs_.size();
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t seq = unissuedSeqs_[i];
        RobEntry &e = *findBySeq(seq);
        bool do_issue = false;

        if (issued < params_.issueWidth && e.dispatchCycle < cycle_ &&
            sourcesReady(e)) {
            if (e.info.isMem && !e.info.isMmio) {
                if (e.info.isLoad) {
                    if (olderStoresIssued(e)) {
                        if (overlapsOlderStore(e)) {
                            e.completeCycle = cycle_ + 2;
                            activity_.add(Unit::Lsq);
                            do_issue = true;
                        } else if (memPortsUsed_ < params_.dcachePorts) {
                            bool hit = dcache_.probe(e.info.effAddr);
                            if (hit || misses_outstanding <
                                           memctrl_.maxOutstanding()) {
                                ++memPortsUsed_;
                                dcache_.access(e.info.effAddr, false);
                                activity_.add(Unit::DCache);
                                activity_.add(Unit::Lsq);
                                if (hit) {
                                    e.completeCycle = cycle_ + 2;
                                } else {
                                    e.completeCycle =
                                        memctrl_.schedule(cycle_ + 2,
                                                          freq_);
                                    e.wasMiss = true;
                                    ++misses_outstanding;
                                    missFillTimes_.push_back(
                                        e.completeCycle);
                                    if (tracer_) [[unlikely]] {
                                        tracer_->record(
                                            EventKind::DcacheMiss, cycle_,
                                            e.info.effAddr, e.info.pc);
                                        if (misses_outstanding !=
                                            lastMshrTraced_) {
                                            lastMshrTraced_ =
                                                misses_outstanding;
                                            tracer_->record(
                                                EventKind::MshrOccupancy,
                                                cycle_,
                                                static_cast<std::uint64_t>(
                                                    misses_outstanding));
                                        }
                                    }
                                }
                                do_issue = true;
                            }
                        }
                    }
                } else {
                    e.completeCycle = cycle_ + 1;
                    activity_.add(Unit::Lsq);
                    unissuedStoreSeqs_.erase(seq);
                    do_issue = true;
                }
            } else {
                e.completeCycle = cycle_ + e.info.inst.latency();
                do_issue = true;
            }
        }

        if (!do_issue) {
            unissuedSeqs_[keep++] = seq;
            continue;
        }

        const Instruction &inst = e.info.inst;
        e.issued = true;
        --iqCount_;
        ++issued;
        activity_.add(Unit::IssueQueue);
        activity_.add(Unit::Fu);
        activity_.add(Unit::ResultBus);
        for (int r : inst.srcIntRegs())
            if (r > 0)
                activity_.add(Unit::RegfileRead);
        for (int r : inst.srcFpRegs())
            if (r >= 0)
                activity_.add(Unit::RegfileRead);
        if (inst.destIntReg() >= 0 || inst.destFpReg() >= 0)
            activity_.add(Unit::RegfileWrite);

        if (static_cast<std::int64_t>(seq) == fetchBlockedSeq_) {
            fetchReadyCycle_ = e.completeCycle + 1;
            fetchBlockedSeq_ = -1;
            if (tracer_) [[unlikely]]
                tracer_->record(EventKind::Squash, e.completeCycle,
                                e.info.pc, seq);
        }
    }
    unissuedSeqs_.resize(keep);
}

void
RefOooCpu::retireStage()
{
    int n = 0;
    while (n < params_.retireWidth && !rob_.empty()) {
        RobEntry &e = rob_.front();
        if (!e.issued || e.completeCycle + 1 > cycle_)
            break;
        if (e.info.isMem && !e.info.isLoad && !e.info.isMmio) {
            if (memPortsUsed_ >= params_.dcachePorts)
                break;
            ++memPortsUsed_;
            bool hit = dcache_.access(e.info.effAddr, true);
            activity_.add(Unit::DCache);
            if (!hit) {
                memctrl_.schedule(cycle_, freq_);
            }
            inflightStores_.pop_front();
        }
        if (e.info.isMem && !e.info.isMmio)
            --lsqCount_;
        if (e.info.halted)
            halted_ = true;
        if (tracer_) [[unlikely]]
            tracer_->record(EventKind::Retire, cycle_, e.info.pc, e.seq);
        rob_.pop_front();
        ++retired_;
        ++n;
    }
}

RunResult
RefOooCpu::runComplex(Cycles budget_end)
{
    while (true) {
        if (halted_ && rob_.empty())
            return {StopReason::Halted};
        if (cycle_ >= budget_end)
            return {StopReason::CycleBudget};
        ++cycle_;
        memPortsUsed_ = 0;
        retireStage();
        issueStage();
        dispatchStage();
        fetchStage();
        syncActivityCycles();
        auto t = tickTo(cycle_);
        if (t.expired) {
            DPRINTF("Watchdog", "expired at cycle %llu (sub-task %d)\n",
                    static_cast<unsigned long long>(cycle_),
                    platform_.currentSubtask());
            return {StopReason::WatchdogExpired};
        }
    }
}

void
RefOooCpu::switchToSimple()
{
    if (mode_ == Mode::Simple)
        return;
    Tracer *tr = currentTracer();
    const Cycles drain_start = cycle_;
    while (!rob_.empty() || !fetchQueue_.empty()) {
        ++cycle_;
        memPortsUsed_ = 0;
        retireStage();
        issueStage();
        dispatchStage();
        tickTo(cycle_);
    }
    DPRINTF("Mode", "drained at cycle %llu; entering simple mode\n",
            static_cast<unsigned long long>(cycle_));
    if (tr) {
        tr->record(EventKind::ModeSwitchDrain, cycle_,
                   cycle_ - drain_start);
        tr->record(EventKind::SimpleModeEnter, cycle_);
    }
    mode_ = Mode::Simple;
    timerBase_ = cycle_;
    timer_.reset();
    prevWasLoad_ = false;
    fetchBlockedSeq_ = -1;
    fetchReadyCycle_ = cycle_;
    lastFetchBlock_ = ~0u;
    syncActivityCycles();
}

void
RefOooCpu::switchToComplex()
{
    if (mode_ == Mode::Complex)
        return;
    if (!rob_.empty() || !fetchQueue_.empty())
        panic("switchToComplex with a non-idle pipeline");
    if (Tracer *tr = currentTracer())
        tr->record(EventKind::SimpleModeExit, cycle_);
    mode_ = Mode::Complex;
    fetchReadyCycle_ = cycle_;
    lastFetchBlock_ = ~0u;
}

RunResult
RefOooCpu::runSimple(Cycles budget_end)
{
    return tracer_ ? runSimpleLoop<true>(budget_end)
                   : runSimpleLoop<false>(budget_end);
}

template <bool Traced>
RunResult
RefOooCpu::runSimpleLoop(Cycles budget_end)
{
    const Cycles penalty = missPenalty();
    while (true) {
        if (halted_)
            return {StopReason::Halted};
        if (cycle_ >= budget_end)
            return {StopReason::CycleBudget};

        const Addr pc = core_.state().pc;

        bool ihit = icache_.access(pc, false);
        if (simpleFetchGroup_++ % 4 == 0)
            activity_.add(Unit::ICache);
        activity_.add(Unit::FetchQueue);

        ExecInfo info = core_.step(true);
        const Instruction &inst = info.inst;

        bool dhit = true;
        if (info.isMem && !info.isMmio) {
            dhit = dcache_.access(info.effAddr, !info.isLoad);
            activity_.add(Unit::DCache);
        }

        bool redirect = false;
        if (inst.isCondBranch()) {
            redirect = staticPredictTaken(inst, pc) != info.taken;
        } else if (inst.isIndirectJump()) {
            redirect = true;
        }

        TimingRecord rec;
        rec.exLatency = inst.latency();
        rec.imissPenalty = ihit ? 0 : penalty;
        rec.dmissPenalty =
            (info.isMem && !info.isMmio && !dhit) ? penalty : 0;
        rec.loadUseStall = prevWasLoad_ && inst.dependsOn(prevInst_);
        rec.redirect = redirect;
        timer_.consume(rec);
        cycle_ = timerBase_ + timer_.totalCycles();

        if constexpr (Traced) {
            if (!ihit)
                tracer_->record(EventKind::IcacheMiss, cycle_, pc);
            if (info.isMem && !info.isMmio && !dhit)
                tracer_->record(EventKind::DcacheMiss, cycle_,
                                info.effAddr, pc);
            if (redirect)
                tracer_->record(EventKind::BranchMispredict, cycle_, pc,
                                retired_, info.taken);
            tracer_->record(EventKind::Retire, cycle_, pc, retired_);
        }

        int nmap = 0;
        for (int r : inst.srcIntRegs())
            if (r > 0) {
                ++nmap;
                activity_.add(Unit::RegfileRead);
            }
        for (int r : inst.srcFpRegs())
            if (r >= 0) {
                ++nmap;
                activity_.add(Unit::RegfileRead);
            }
        if (inst.destIntReg() >= 0 || inst.destFpReg() >= 0) {
            ++nmap;
            activity_.add(Unit::RegfileWrite);
        }
        activity_.add(Unit::RenameMap, static_cast<std::uint64_t>(nmap));
        activity_.add(Unit::Fu);
        activity_.add(Unit::ResultBus);

        auto tick = tickTo(timerBase_ + timer_.lastMemDone());
        if (info.isMmio)
            core_.performMmio(info);

        prevInst_ = inst;
        prevWasLoad_ = info.isLoad;
        ++retired_;
        syncActivityCycles();

        if (tick.expired)
            return {StopReason::WatchdogExpired};
        if (info.halted) {
            halted_ = true;
            cycle_ = timerBase_ + timer_.totalCycles();
            tickTo(cycle_);
            return {StopReason::Halted};
        }
    }
}

RunResult
RefOooCpu::run(Cycles max_cycles)
{
    const Cycles budget_end = max_cycles == noCycleLimit
        ? noCycleLimit
        : cycle_ + max_cycles;
    if (halted_)
        return {StopReason::Halted};
    tracer_ = currentTracer();
    return mode_ == Mode::Complex ? runComplex(budget_end)
                                  : runSimple(budget_end);
}

} // namespace visa::verify
