#include "verify/corpus.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace visa::verify
{

namespace
{

/** "key: value" from a "# key: value" header line, if it is one. */
bool
headerField(const std::string &line, std::string &key, std::string &value)
{
    if (line.rfind("# ", 0) != 0)
        return false;
    std::size_t colon = line.find(": ");
    if (colon == std::string::npos)
        return false;
    key = line.substr(2, colon - 2);
    value = line.substr(colon + 2);
    return true;
}

} // namespace

std::string
formatRepro(const ReproCase &r)
{
    std::string out = "# visa-fuzz repro\n";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "# seed: %llu\n",
                  static_cast<unsigned long long>(r.seed));
    out += buf;
    out += "# profile: " + r.profile + "\n";
    if (!r.note.empty())
        out += "# note: " + r.note + "\n";
    out += r.source;
    if (!r.source.empty() && r.source.back() != '\n')
        out += '\n';
    return out;
}

ReproCase
parseRepro(const std::string &text)
{
    ReproCase r;
    std::istringstream in(text);
    std::string line;
    std::string body;
    bool inHeader = true;
    while (std::getline(in, line)) {
        if (inHeader && line.rfind("# visa-fuzz", 0) == 0)
            continue;    // the format marker line
        std::string key, value;
        if (inHeader && headerField(line, key, value)) {
            if (key == "seed")
                r.seed = std::strtoull(value.c_str(), nullptr, 0);
            else if (key == "profile")
                r.profile = value;
            else if (key == "note")
                r.note = value;
            // "visa-fuzz repro" (and unknown keys) are just skipped.
            continue;
        }
        inHeader = false;
        body += line;
        body += '\n';
    }
    r.source = body;
    return r;
}

bool
saveRepro(const std::string &path, const ReproCase &r)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << formatRepro(r);
    return static_cast<bool>(out);
}

ReproCase
loadRepro(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("corpus: cannot read '%s'", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    return parseRepro(ss.str());
}

} // namespace visa::verify
