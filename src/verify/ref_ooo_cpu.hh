/**
 * @file
 * The reference complex-processor timing stepper: a frozen copy of the
 * pre-event-driven OooCpu cycle loop (polling issue, tick-per-cycle,
 * no idle skipping), kept verbatim so the production event-driven core
 * (cpu/ooo_cpu.cc, DESIGN.md "Event-driven complex core") can be
 * cross-checked against it cycle for cycle.
 *
 * The timing-equivalence oracle (verify/timing_cross.hh) runs the same
 * program on both implementations with a private event tracer each and
 * asserts the complete cycle-stamped event streams — every fetch,
 * retire, squash, mispredict, cache miss, MSHR transition, and mode
 * switch — are identical, along with final cycle counts and stats.
 * `visa-fuzz --cross-check-timing` drives it over the fuzz corpus.
 *
 * This class is deliberately NOT refactored to share stage code with
 * OooCpu: sharing would let a bug cancel itself out on both sides. It
 * must stay a faithful snapshot of the historical per-cycle model; the
 * only divergence from that snapshot is the MshrOccupancy per-change
 * dedupe, which landed before the snapshot was taken.
 */

#ifndef VISA_VERIFY_REF_OOO_CPU_HH
#define VISA_VERIFY_REF_OOO_CPU_HH

#include <deque>
#include <set>
#include <vector>

#include "cpu/bpred.hh"
#include "cpu/cpu.hh"
#include "cpu/ooo_cpu.hh"
#include "cpu/visa_timing.hh"
#include "sim/trace.hh"

namespace visa::verify
{

/** The historical per-cycle complex processor (reference stepper). */
class RefOooCpu final : public Cpu
{
  public:
    enum class Mode { Complex, Simple };

    RefOooCpu(const Program &prog, MainMemory &mem, Platform &platform,
              MemController &memctrl, const OooParams &params = {});

    void resetForTask() override;
    RunResult run(Cycles max_cycles = noCycleLimit) override;
    void advanceIdle(Cycles n) override;
    Cycles cycles() const override { return cycle_; }
    void flushCachesAndPredictors() override;

    /** Drain and reconfigure into simple mode (see OooCpu). */
    void switchToSimple();

    /** Reconfigure back to complex mode; the pipeline must be idle. */
    void switchToComplex();

    Mode mode() const { return mode_; }
    std::uint64_t branchMispredicts() const { return mispredicts_; }
    const OooParams &params() const { return params_; }

  protected:
    const char *statsName() const override { return "complex"; }

  private:
    struct FetchEntry
    {
        ExecInfo info;
        std::uint64_t seq = 0;
        Cycles fetchCycle = 0;
        bool mispredicted = false;
    };

    struct RobEntry
    {
        ExecInfo info;
        std::uint64_t seq = 0;
        std::array<std::int64_t, 3> srcProducers{-1, -1, -1};
        Cycles dispatchCycle = 0;
        Cycles completeCycle = 0;
        bool issued = false;
        bool wasMiss = false;
        bool mispredicted = false;
    };

    RunResult runComplex(Cycles budget_end);
    RunResult runSimple(Cycles budget_end);

    template <bool Traced>
    RunResult runSimpleLoop(Cycles budget_end);

    void fetchStage();
    void dispatchStage();
    void issueStage();
    void retireStage();

    bool olderStoresIssued(const RobEntry &load) const;
    bool overlapsOlderStore(const RobEntry &load) const;
    int outstandingLoadMisses();

    // ROB sequence numbers are contiguous (dispatch appends, retire pops
    // the front), so seq lookup is an O(1) index off the oldest entry.
    const RobEntry *
    findBySeq(std::uint64_t seq) const
    {
        if (rob_.empty() || seq < rob_.front().seq)
            return nullptr;
        std::size_t idx =
            static_cast<std::size_t>(seq - rob_.front().seq);
        if (idx >= rob_.size())
            return nullptr;
        return &rob_[idx];
    }
    RobEntry *
    findBySeq(std::uint64_t seq)
    {
        return const_cast<RobEntry *>(
            static_cast<const RefOooCpu *>(this)->findBySeq(seq));
    }

    bool
    sourcesReady(const RobEntry &e) const
    {
        for (std::int64_t p : e.srcProducers) {
            if (p < 0)
                continue;
            const RobEntry *prod =
                findBySeq(static_cast<std::uint64_t>(p));
            if (!prod)
                continue;    // producer already retired
            if (!prod->issued || prod->completeCycle > cycle_)
                return false;
        }
        return true;
    }

    Platform::TickResult tickTo(Cycles to);

    bool robFull() const
    {
        return static_cast<int>(rob_.size()) >= params_.robSize;
    }
    int iqOccupancy() const { return iqCount_; }
    int lsqOccupancy() const { return lsqCount_; }

    OooParams params_;
    Mode mode_ = Mode::Complex;
    Gshare gshare_;
    IndirectPredictor indirect_;

    Cycles cycle_ = 0;
    Cycles ticked_ = 0;
    std::uint64_t seqCounter_ = 0;

    std::deque<FetchEntry> fetchQueue_;
    std::deque<RobEntry> rob_;

    std::array<std::int64_t, numIntRegs> lastIntWriter_;
    std::array<std::int64_t, numFpRegs> lastFpWriter_;
    std::int64_t lastFccWriter_ = -1;

    Cycles fetchReadyCycle_ = 0;
    std::int64_t fetchBlockedSeq_ = -1;   ///< unresolved mispredict
    Addr lastFetchBlock_ = ~0u;
    bool haltFetched_ = false;
    int memPortsUsed_ = 0;
    int iqCount_ = 0;
    int lsqCount_ = 0;

    /** Dispatched-but-unissued entries, in program (seq) order. */
    std::vector<std::uint64_t> unissuedSeqs_;
    /** Unissued non-MMIO stores (min element gates load issue). */
    std::set<std::uint64_t> unissuedStoreSeqs_;
    /** In-flight (dispatched, unretired) non-MMIO stores, seq order. */
    struct StoreRef
    {
        std::uint64_t seq;
        Addr lo, hi;
    };
    std::deque<StoreRef> inflightStores_;
    /** Fill-completion cycles of issued, still-outstanding load misses. */
    std::vector<Cycles> missFillTimes_;

    std::uint64_t mispredicts_ = 0;
    /** Last MshrOccupancy value traced (dedupe: emit per change). */
    int lastMshrTraced_ = -1;

    Tracer *tracer_ = nullptr;

    // ---- simple-mode engine (shared VISA timing recurrence) ----
    VisaTimer timer_;
    Cycles timerBase_ = 0;
    Instruction prevInst_;
    bool prevWasLoad_ = false;
    std::uint64_t simpleFetchGroup_ = 0;
};

} // namespace visa::verify

#endif // VISA_VERIFY_REF_OOO_CPU_HH
