/**
 * @file
 * Timing-invariant oracle for generated programs: asserts the paper's
 * analytical guarantees against actual simulated timing.
 *
 * For an instrumented generated program the oracle checks:
 *
 *  1. WCET soundness — per-sub-task actual execution time (AET), both
 *     on the simple-fixed processor and in the complex processor's
 *     speculative mode, never exceeds the static VISA WCET at the
 *     respective frequency (paper §3.3: complex-mode AETs staying
 *     under the VISA bound is exactly what makes speculation pay off;
 *     simple-mode conformance is what makes the bound *safe*).
 *
 *  2. EQ 1 checkpoint arithmetic — the runtime's computeCheckpoints
 *     output is re-derived independently from the WCET table:
 *     checkpoint_i = deadline - ovhd - sum_{k=i..s} WCET_{k,f_rec},
 *     increments convert checkpoints to watchdog cycles at f_spec via
 *     floor(), monotonically, and their running sum never overshoots
 *     the checkpoint it realizes.
 *
 *  3. Recovery budget — with the watchdog forced to expire early in
 *     sub-task 1, switching the complex processor to simple mode,
 *     charging the reconfiguration overhead, and finishing at the
 *     recovery frequency still meets a deadline provisioned as
 *     slack * (ovhd + WCET_task(f_rec)) — the end-to-end property EQ 1
 *     exists to guarantee.
 */

#ifndef VISA_VERIFY_ORACLE_HH
#define VISA_VERIFY_ORACLE_HH

#include <string>

#include "sim/types.hh"
#include "verify/progen.hh"

namespace visa::verify
{

/** Oracle knobs. All frequencies must be DVS operating points. */
struct OracleOptions
{
    MHz fSpec = 1000;
    MHz fRec = 600;
    /** Reconfiguration + frequency-switch overhead, seconds. */
    double ovhdSeconds = 2e-6;
    /** Deadline slack factor over ovhd + WCET_task(f_rec). */
    double deadlineSlack = 1.10;
    /** Run the forced-expiry recovery check (costs one more rig run). */
    bool checkForcedRecovery = true;
};

/** Oracle outcome. */
struct OracleResult
{
    bool ok = false;
    int subtasks = 0;
    /** Violations found; empty when ok. */
    std::string report;
};

/**
 * Run all timing checks on @p gp, which must have been generated with
 * GenParams::instrument set (the AET checks need the sub-task
 * snippets). Analyzer or checkpoint failures (FatalError) are reported
 * as violations, not propagated.
 */
OracleResult runTimingOracle(const GeneratedProgram &gp,
                             const OracleOptions &opts = {});

} // namespace visa::verify

#endif // VISA_VERIFY_ORACLE_HH
