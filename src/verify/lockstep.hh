/**
 * @file
 * Lockstep differential co-simulation of the two pipelines.
 *
 * Both processors funnel every instruction through the shared ExecCore
 * in program order (the complex pipeline executes functionally at
 * fetch with perfect squash; the in-order pipeline at commit), so an
 * ExecObserver on each rig yields two directly comparable
 * architectural streams. The checker runs both machines in bounded
 * slices, diffs the streams record by record (PC, next PC, destination
 * value, FCC, store address/data), and on completion compares the full
 * architectural state, every materialized memory page, and the
 * platform-visible outputs (checksum, console).
 *
 * A divergence report carries the first mismatching instruction, a
 * disassembled window around it, and the tail of each rig's event
 * trace (sim/trace.hh) for post-mortem debugging.
 */

#ifndef VISA_VERIFY_LOCKSTEP_HH
#define VISA_VERIFY_LOCKSTEP_HH

#include <cstdint>
#include <functional>
#include <string>

#include "isa/program.hh"

namespace visa
{
class OooCpu;
} // namespace visa

namespace visa::verify
{

/** Checker knobs. */
struct LockstepOptions
{
    /**
     * Per-side cap on executed instructions; exceeding it without
     * halting reports a timeout, not a divergence (generated programs
     * are bounded, but minimization candidates can loop forever).
     */
    std::uint64_t maxInstructions = 2'000'000;
    /** Records shown around the first mismatch. */
    int reportWindow = 6;
    /** Trace events shown per rig in the report. */
    int traceTail = 12;
    /** Skip the final page-by-page memory diff (for speed). */
    bool compareMemory = true;
    /**
     * Per-side basic-block translation cache switches. Defaulting both
     * on matches production; splitting them (one side cached, one not)
     * turns every lockstep run into a cache-on/off equivalence check
     * on top of the pipeline diff.
     */
    bool refBlockCache = true;
    bool candBlockCache = true;
    /**
     * Test hook: called on the complex rig's CPU after construction
     * (e.g. to enable the injected verification bug).
     */
    std::function<void(OooCpu &)> prepareComplex;
};

/** Outcome of one lockstep run. */
struct LockstepResult
{
    /** True iff both machines halted in identical architectural state. */
    bool equivalent = false;
    /** A concrete mismatch was found (report describes it). */
    bool diverged = false;
    /** The instruction cap was hit before both machines halted. */
    bool timedOut = false;
    /** Instructions retired on the reference (in-order) machine. */
    std::uint64_t instructions = 0;
    /** Human-readable divergence report; empty when equivalent. */
    std::string report;
};

/**
 * Run @p prog on a SimpleCpu rig (reference) and an OooCpu rig
 * (candidate) in lockstep and compare. The program must not touch the
 * MMIO window if strict equivalence is expected: cycle-counter reads
 * are timing-dependent between the machines by design (the checker
 * therefore skips value comparison for MMIO loads but still compares
 * control flow and addresses).
 */
LockstepResult runLockstep(const Program &prog,
                           const LockstepOptions &opts = {});

} // namespace visa::verify

#endif // VISA_VERIFY_LOCKSTEP_HH
