#include "verify/oracle.hh"

#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <memory>

#include "core/checkpoints.hh"
#include "core/wcet_table.hh"
#include "cpu/ooo_cpu.hh"
#include "cpu/simple_cpu.hh"
#include "mem/memctrl.hh"
#include "mem/memory.hh"
#include "mem/platform.hh"
#include "sim/logging.hh"
#include "wcet/analyzer.hh"

namespace visa::verify
{

namespace
{

void
appendf(std::string &out, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

void
appendf(std::string &out, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    char buf[512];
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    out += buf;
}

/** Forced-expiry watchdog budget: fires early in sub-task 1. */
constexpr Word forcedExpiryCycles = 8;

/** A self-contained machine for one oracle run. */
template <typename CpuT>
struct Rig
{
    explicit Rig(const Program &prog)
    {
        mem.loadProgram(prog);
        cpu = std::make_unique<CpuT>(prog, mem, platform, memctrl);
        cpu->resetForTask();
    }

    MainMemory mem;
    Platform platform;
    MemController memctrl;
    std::unique_ptr<CpuT> cpu;
};

/**
 * Run @p prog to completion at @p f collecting per-sub-task AETs; the
 * snippets report sub-task i's AET when sub-task i+1 begins (and the
 * last at task end), with the cycle counter reset in between.
 */
template <typename CpuT>
std::map<int, std::uint64_t>
collectAets(const Program &prog, MHz f, Word &checksum)
{
    Rig<CpuT> rig(prog);
    rig.cpu->setFrequency(f);
    std::map<int, std::uint64_t> aets;
    rig.platform.onAetReport = [&](int id, std::uint64_t cycles) {
        aets[id] = cycles;
    };
    rig.cpu->run(2'000'000'000ULL);
    checksum = rig.platform.lastChecksum();
    return aets;
}

void
checkAets(std::string &report, const char *what,
          const std::map<int, std::uint64_t> &aets, const WcetTable &wcet,
          MHz f)
{
    for (int k = 0; k < wcet.numSubtasks(); ++k) {
        auto it = aets.find(k + 1);
        if (it == aets.end()) {
            appendf(report, "%s: sub-task %d reported no AET at %u MHz\n",
                    what, k + 1, f);
            continue;
        }
        const Cycles bound = wcet.subtaskCycles(k, f);
        if (it->second > bound)
            appendf(report,
                    "%s: sub-task %d AET %" PRIu64
                    " exceeds WCET %" PRIu64 " at %u MHz\n",
                    what, k + 1, it->second,
                    static_cast<std::uint64_t>(bound), f);
    }
}

/**
 * Re-derive EQ 1 from a raw analyzer report (independent of the
 * WcetTable plumbing computeCheckpoints itself uses) and diff the
 * runtime's plan against it.
 */
void
checkCheckpointArithmetic(std::string &report, const CheckpointPlan &plan,
                          const WcetReport &rec, const OracleOptions &opts,
                          double deadline)
{
    const int s = static_cast<int>(rec.subtaskCycles.size());
    if (static_cast<int>(plan.checkpoints.size()) != s ||
        static_cast<int>(plan.increments.size()) != s) {
        appendf(report, "EQ1: plan has %zu checkpoints / %zu increments "
                        "for %d sub-tasks\n",
                plan.checkpoints.size(), plan.increments.size(), s);
        return;
    }
    const double fhz = opts.fSpec * 1e6;
    double tail = 0.0;
    std::vector<double> expected(static_cast<std::size_t>(s));
    for (int i = s - 1; i >= 0; --i) {
        tail += static_cast<double>(rec.subtaskCycles[static_cast<
                    std::size_t>(i)]) /
                (opts.fRec * 1e6);
        expected[static_cast<std::size_t>(i)] =
            deadline - opts.ovhdSeconds - tail;
    }
    std::int64_t cum = 0;
    for (int i = 0; i < s; ++i) {
        const double want = expected[static_cast<std::size_t>(i)];
        const double got = plan.checkpoints[static_cast<std::size_t>(i)];
        if (std::fabs(got - want) >
            1e-12 * std::max(1.0, std::fabs(want)))
            appendf(report,
                    "EQ1: checkpoint %d is %.12g s, expected %.12g s\n",
                    i + 1, got, want);
        if (got <= 0.0)
            appendf(report, "EQ1: checkpoint %d non-positive (%.3g s)\n",
                    i + 1, got);
        if (i > 0 && got < plan.checkpoints[static_cast<std::size_t>(i - 1)])
            appendf(report, "EQ1: checkpoint %d not monotonic\n", i + 1);
        if (plan.increments[static_cast<std::size_t>(i)] <= 0)
            appendf(report, "EQ1: increment %d non-positive\n", i + 1);
        cum += plan.increments[static_cast<std::size_t>(i)];
        // The running watchdog total realizes checkpoint i in cycles
        // at f_spec: never beyond it (safety), and within one floor()
        // rounding step per term of it (tightness).
        const double cumSeconds = static_cast<double>(cum) / fhz;
        if (cumSeconds > got + 1e-12)
            appendf(report,
                    "EQ1: watchdog total %" PRId64
                    " overshoots checkpoint %d (%.12g > %.12g s)\n",
                    cum, i + 1, cumSeconds, got);
        if (static_cast<double>(cum + i + 1) < got * fhz - 1.0)
            appendf(report,
                    "EQ1: watchdog total %" PRId64
                    " undershoots checkpoint %d by more than rounding\n",
                    cum, i + 1);
    }
}

/**
 * Force a missed checkpoint and verify the recovery path: complex
 * execution until the (unmasked) watchdog fires, drain to simple mode,
 * charge the reconfiguration overhead, finish at f_rec — total must
 * meet the provisioned deadline.
 */
void
checkForcedRecovery(std::string &report, const Program &prog,
                    const OracleOptions &opts, double deadline)
{
    Rig<OooCpu> rig(prog);
    rig.cpu->setFrequency(opts.fSpec);
    rig.platform.setRecoveryFreq(opts.fRec);
    // Arm the watchdog with a tiny budget through the program's own
    // wdinc table: the sub-task 1 snippet loads wdinc[0] and stores it
    // to the watchdog port. Later entries stay zero (add nothing).
    rig.mem.writeWord(prog.symbol("wdinc"), forcedExpiryCycles);
    rig.platform.maskWatchdog(false);

    RunResult r = rig.cpu->run(2'000'000'000ULL);
    if (r.reason != StopReason::WatchdogExpired) {
        appendf(report, "recovery: watchdog never fired (reason %d)\n",
                static_cast<int>(r.reason));
        return;
    }
    rig.platform.maskWatchdog(true);
    rig.cpu->switchToSimple();
    const Cycles specCycles = rig.cpu->cycles();
    rig.cpu->setFrequency(opts.fRec);
    r = rig.cpu->run(2'000'000'000ULL);
    if (r.reason != StopReason::Halted) {
        appendf(report, "recovery: task did not complete (reason %d)\n",
                static_cast<int>(r.reason));
        return;
    }
    if (!rig.platform.checksumReported())
        appendf(report, "recovery: no checksum reported after recovery\n");

    const Cycles recCycles = rig.cpu->cycles() - specCycles;
    const double elapsed =
        static_cast<double>(specCycles) / (opts.fSpec * 1e6) +
        opts.ovhdSeconds +
        static_cast<double>(recCycles) / (opts.fRec * 1e6);
    if (elapsed > deadline)
        appendf(report,
                "recovery: %.6g s exceeds deadline %.6g s "
                "(spec %" PRIu64 " cy @%u MHz + ovhd + rec %" PRIu64
                " cy @%u MHz)\n",
                elapsed, deadline, static_cast<std::uint64_t>(specCycles),
                opts.fSpec, static_cast<std::uint64_t>(recCycles),
                opts.fRec);
}

} // namespace

OracleResult
runTimingOracle(const GeneratedProgram &gp, const OracleOptions &opts)
{
    OracleResult res;
    const Program &prog = gp.program;

    try {
        WcetAnalyzer analyzer(prog);
        const DMissProfile dmiss = profileDataMisses(prog);
        const DvsTable dvs;
        const WcetTable wcet(analyzer, dvs, &dmiss);
        res.subtasks = wcet.numSubtasks();

        // 1. AET <= WCET, on both machines at their frequencies.
        Word simpleCk = 0;
        Word complexCk = 0;
        checkAets(res.report, "simple-fixed",
                  collectAets<SimpleCpu>(prog, opts.fRec, simpleCk), wcet,
                  opts.fRec);
        checkAets(res.report, "complex",
                  collectAets<OooCpu>(prog, opts.fSpec, complexCk), wcet,
                  opts.fSpec);
        if (simpleCk != complexCk)
            appendf(res.report,
                    "functional: checksum mismatch simple=0x%08X "
                    "complex=0x%08X\n",
                    simpleCk, complexCk);

        // 2. EQ 1 arithmetic, against an independent re-derivation.
        const double deadline =
            opts.deadlineSlack *
            (opts.ovhdSeconds + wcet.taskSeconds(opts.fRec));
        const CheckpointPlan plan = computeCheckpoints(
            wcet, opts.fRec, opts.fSpec, deadline, opts.ovhdSeconds);
        const WcetReport recReport = analyzer.analyze(opts.fRec, &dmiss);
        checkCheckpointArithmetic(res.report, plan, recReport, opts,
                                  deadline);

        // 3. Forced-miss recovery meets the provisioned deadline.
        if (opts.checkForcedRecovery)
            checkForcedRecovery(res.report, prog, opts, deadline);
    } catch (const FatalError &e) {
        appendf(res.report, "oracle: fatal: %s\n", e.what());
    }

    res.ok = res.report.empty();
    return res;
}

} // namespace visa::verify
