#include "verify/minimize.hh"

#include <vector>

#include "isa/assembler.hh"
#include "sim/logging.hh"

namespace visa::verify
{

namespace
{

std::vector<std::string>
splitLines(const std::string &src)
{
    std::vector<std::string> lines;
    std::size_t pos = 0;
    while (pos < src.size()) {
        std::size_t nl = src.find('\n', pos);
        if (nl == std::string::npos)
            nl = src.size();
        lines.push_back(src.substr(pos, nl - pos));
        pos = nl + 1;
    }
    return lines;
}

std::string
joinLines(const std::vector<std::string> &lines,
          const std::vector<bool> &removed)
{
    std::string out;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        if (removed[i])
            continue;
        out += lines[i];
        out += '\n';
    }
    return out;
}

/**
 * Only plain instruction lines may be deleted: labels anchor branches,
 * directives anchor segments/bounds/data, and comments carry repro
 * metadata (corpus headers).
 */
bool
isRemovable(const std::string &line)
{
    std::size_t i = line.find_first_not_of(" \t");
    if (i == std::string::npos)
        return false;
    char c = line[i];
    if (c == '.' || c == '#' || c == ';')
        return false;
    if (line.find(':') != std::string::npos)
        return false;
    // Keep halts: removing one can leave a program that still diverges
    // before falling into an endless loop — a repro that would never
    // replay as "equivalent" once the bug under test is fixed.
    if (line.compare(i, 4, "halt") == 0)
        return false;
    return true;
}

} // namespace

MinimizeResult
minimizeSource(const std::string &source, const FailurePredicate &stillFails)
{
    MinimizeResult res;
    std::vector<std::string> lines = splitLines(source);
    std::vector<bool> removed(lines.size(), false);
    // Candidate budget: minimization must terminate even on inputs
    // where almost every removal still fails (worst case is quadratic
    // in line count for the final single-line passes).
    constexpr int maxCandidates = 4000;

    auto tryCandidate = [&](const std::vector<bool> &cand) -> bool {
        if (res.candidates >= maxCandidates)
            return false;
        ++res.candidates;
        Program prog;
        try {
            prog = assemble(joinLines(lines, cand));
        } catch (const FatalError &) {
            return false;    // stopped assembling: reject
        }
        return stillFails(prog);
    };

    bool shrunk = true;
    while (shrunk && res.candidates < maxCandidates) {
        shrunk = false;
        std::vector<std::size_t> live;
        for (std::size_t i = 0; i < lines.size(); ++i)
            if (!removed[i] && isRemovable(lines[i]))
                live.push_back(i);
        if (live.empty())
            break;

        for (std::size_t chunk = live.size(); chunk >= 1; chunk /= 2) {
            bool any = false;
            for (std::size_t at = 0; at < live.size(); at += chunk) {
                std::vector<bool> cand = removed;
                const std::size_t end = std::min(at + chunk, live.size());
                bool grew = false;
                for (std::size_t j = at; j < end; ++j) {
                    grew = grew || !cand[live[j]];
                    cand[live[j]] = true;
                }
                if (!grew)
                    continue;    // window already removed by this pass
                if (tryCandidate(cand)) {
                    removed = cand;
                    any = true;
                    shrunk = true;
                }
            }
            if (any)
                break;    // recompute the live set, restart halving
            if (chunk == 1)
                break;
        }
    }

    res.source = joinLines(lines, removed);
    try {
        res.instructions = assemble(res.source).text.size();
    } catch (const FatalError &) {
        // Unreachable: every committed candidate assembled.
        res.instructions = 0;
    }
    return res;
}

} // namespace visa::verify
