#include "verify/inject.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>

#include "chip/paired.hh"
#include "core/runtime.hh"
#include "cpu/ooo_cpu.hh"
#include "cpu/simple_cpu.hh"
#include "isa/semantics.hh"
#include "mem/memctrl.hh"
#include "mem/memory.hh"
#include "mem/platform.hh"
#include "sim/parallel.hh"
#include "sim/prof/prof.hh"
#include "verify/lockstep.hh"
#include "wcet/analyzer.hh"

namespace visa::verify
{

namespace
{

/** splitmix64: the derived-value generator (same family as progen). */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

constexpr const char *classNames[numFaultClasses] = {
    "reg-bit-flip", "load-value",    "load-addr",
    "store-addr",   "branch-dir",    "branch-target",
    "decode-imm",   "wakeup-stall",  "load-ext",
};

} // anonymous namespace

const char *
faultClassName(FaultClass cls)
{
    const int i = static_cast<int>(cls);
    return (i >= 0 && i < numFaultClasses) ? classNames[i] : "?";
}

bool
parseFaultClass(const char *name, FaultClass &out)
{
    for (int i = 0; i < numFaultClasses; ++i) {
        if (std::strcmp(name, classNames[i]) == 0) {
            out = static_cast<FaultClass>(i);
            return true;
        }
    }
    return false;
}

FaultSpec
loadExtBugSpec()
{
    FaultSpec s;
    s.cls = FaultClass::LoadExt;
    s.persistent = true;
    return s;
}

FaultInjector::FaultInjector(const FaultSpec &spec)
    : spec_(spec)
{
}

void
FaultInjector::reset()
{
    rec_ = FaultRecord{};
    executed_ = 0;
}

bool
FaultInjector::armed(Cycles cycle) const
{
    if (spec_.triggerCycle)
        return cycle >= spec_.triggerCycle;
    return executed_ >= spec_.triggerInstr;
}

void
FaultInjector::onExecute(ExecCore &core, MainMemory &mem, ExecInfo &info,
                         std::uint64_t seq, Cycles cycle)
{
    const bool was_armed = armed(cycle);
    ++executed_;
    if (spec_.cls == FaultClass::WakeupStall)
        return;    // timing-only; lives in onIssueReady()
    if (!was_armed || (rec_.fired && !spec_.persistent))
        return;
    // MMIO instructions drive the watchdog/AET protocol itself and the
    // halt marker ends the run — neither is a modeled victim structure.
    if (info.halted || info.isMmio)
        return;
    if (!apply(core, mem, info))
        return;
    if (!rec_.fired) {
        rec_.fired = true;
        rec_.seq = seq;
        rec_.pc = info.pc;
        rec_.cycle = cycle;
        VISA_TRACE(EventKind::FaultInject, cycle,
                   static_cast<std::uint64_t>(spec_.cls), info.pc, seq);
    }
    ++rec_.applied;
}

Cycles
FaultInjector::onIssueReady(std::uint64_t seq, Cycles cycle)
{
    if (spec_.cls != FaultClass::WakeupStall)
        return 0;
    if (rec_.fired && (!spec_.persistent || seq <= rec_.seq))
        return 0;    // never re-stall one entry: that would livelock
    const bool hit = spec_.triggerCycle ? cycle >= spec_.triggerCycle
                                        : seq >= spec_.triggerInstr;
    if (!hit)
        return 0;
    if (!rec_.fired) {
        rec_.fired = true;
        rec_.cycle = cycle;
        VISA_TRACE(EventKind::FaultInject, cycle,
                   static_cast<std::uint64_t>(spec_.cls), 0, seq);
    }
    rec_.seq = seq;
    ++rec_.applied;
    return static_cast<Cycles>(1)
           << (10 + static_cast<int>(mix64(spec_.seed) % 8));
}

bool
FaultInjector::apply(ExecCore &core, MainMemory &mem, ExecInfo &info)
{
    const Instruction &inst = info.inst;
    ArchState &st = core.state();
    const std::uint64_t r = mix64(spec_.seed);

    switch (spec_.cls) {
      case FaultClass::RegBitFlip: {
        const int rd = inst.destIntReg();
        if (rd < 0)
            return false;
        st.writeInt(rd, st.readInt(rd) ^
                            (static_cast<Word>(1) << (r % 32)));
        return true;
      }
      case FaultClass::LoadValue: {
        const int rd = inst.destIntReg();
        if (!info.isLoad || rd < 0)
            return false;
        st.writeInt(rd, st.readInt(rd) ^
                            (static_cast<Word>(1) << (r % 32)));
        return true;
      }
      case FaultClass::LoadAddr: {
        const int rd = inst.destIntReg();
        if (!info.isLoad || rd < 0)
            return false;
        // Flip an address bit above the word offset: alignment is
        // preserved and the access stays near the original page.
        const Addr ea = info.effAddr ^
                        (static_cast<Addr>(1) << (4 + r % 8));
        if (mmio::contains(ea))
            return false;
        const Word raw = static_cast<Word>(
            mem.read(ea, inst.memBytes()));
        st.writeInt(rd, extendLoad(inst.op, raw));
        info.effAddr = ea;    // the timing model sees the bad address
        return true;
      }
      case FaultClass::StoreAddr: {
        if (!inst.isStore() || inst.op == Opcode::SDC1)
            return false;
        const Addr ea = info.effAddr ^
                        (static_cast<Addr>(1) << (4 + r % 8));
        // A wild store into text would leave the victim executing
        // garbage encodings (an immediate decode trap) — scribbling
        // over data models the interesting escapes.
        const Program &prog = core.program();
        if (mmio::contains(ea) ||
            (ea + 4 > prog.textBase && ea < prog.textEnd()))
            return false;
        mem.write(ea, st.readInt(inst.rt), inst.memBytes());
        return true;
      }
      case FaultClass::BranchDir: {
        if (!inst.isCondBranch())
            return false;
        info.taken = !info.taken;
        info.nextPc = info.taken ? static_cast<Addr>(inst.imm)
                                 : info.pc + 4;
        st.pc = info.nextPc;
        return true;
      }
      case FaultClass::BranchTarget: {
        // Target-field upset in the decoded record / BTB: a *taken*
        // control transfer (direct jump or taken conditional branch)
        // lands on its fall-through slot instead of its target. The
        // direction is untouched — that is BranchDir's job.
        const bool transfer =
            inst.isDirectJump() || (inst.isCondBranch() && info.taken);
        if (!transfer)
            return false;
        const Addr t = info.pc + 4;
        if (t >= core.program().textEnd() || t == info.nextPc)
            return false;
        info.nextPc = t;    // taken, but to the fall-through slot
        st.pc = t;
        return true;
      }
      case FaultClass::DecodeImm: {
        // Replay the op with one immediate bit flipped. Restricted to
        // ops whose correct result lets the source value be recovered
        // even when rd == rs (the functional step already ran).
        const int rd = inst.destIntReg();
        if (rd < 0)
            return false;
        const std::int32_t imm2 =
            inst.imm ^ (static_cast<std::int32_t>(1) << (r % 12));
        const Word old = st.readInt(rd);
        if (inst.op == Opcode::ADDI)
            st.writeInt(rd, old + static_cast<Word>(imm2 - inst.imm));
        else if (inst.op == Opcode::XORI)
            st.writeInt(rd, old ^ static_cast<Word>(inst.imm) ^
                                static_cast<Word>(imm2));
        else
            return false;
        return true;
      }
      case FaultClass::LoadExt: {
        // The legacy deliberate bug: LB/LH zero-extend.
        const int rd = inst.destIntReg();
        if (rd < 0 ||
            (inst.op != Opcode::LB && inst.op != Opcode::LH))
            return false;
        const Word raw = static_cast<Word>(
            mem.read(info.effAddr, inst.memBytes()));
        st.writeInt(rd, raw);    // raw bytes are already zero-extended
        return true;
      }
      case FaultClass::WakeupStall:
        return false;    // unreachable (filtered in onExecute)
    }
    return false;
}

// ---------------------------------------------------------------------
// Campaign driver
// ---------------------------------------------------------------------

namespace
{

/** One self-contained machine (the oracle's rig pattern). */
template <typename CpuT>
struct Rig
{
    explicit Rig(const Program &prog)
    {
        mem.loadProgram(prog);
        cpu = std::make_unique<CpuT>(prog, mem, platform, memctrl);
        cpu->resetForTask();
    }

    MainMemory mem;
    Platform platform;
    MemController memctrl;
    std::unique_ptr<CpuT> cpu;
};

/** Golden functional run: checksum + dynamic instruction count. */
struct Golden
{
    Word checksum = 0;
    std::uint64_t insts = 0;
};

Golden
goldenRun(const Program &prog)
{
    Rig<SimpleCpu> rig(prog);
    rig.cpu->run(2'000'000'000ULL);
    return {rig.platform.lastChecksum(), rig.cpu->retired()};
}

/** First watchdog_fire cycle at/after @p after in @p tr (0 = none). */
Cycles
watchdogFireCycle(const Tracer &tr, Cycles after)
{
    for (std::size_t i = 0; i < tr.size(); ++i) {
        const TraceEvent &e = tr.at(i);
        if (e.kind == EventKind::WatchdogFire && e.cycle >= after)
            return e.cycle;
    }
    return 0;
}

} // anonymous namespace

InjectRunResult
runInjectProgram(std::uint64_t seed, FaultClass cls,
                 const InjectRunOptions &opts)
{
    InjectRunResult res;
    res.seed = seed;
    res.cls = cls;

    // The instrumented variant carries the watchdog/AET protocol the
    // runtime needs; the fault is injected into this one.
    GenParams gp;
    gp.profile = opts.profile;
    gp.statements = opts.statements;
    gp.instrument = true;
    gp.allowCalls = false;
    const GeneratedProgram g = generate(seed, gp);
    res.source = g.source;

    const Golden gold = goldenRun(g.program);
    res.goldenChecksum = gold.checksum;

    FaultSpec spec;
    spec.cls = cls;
    spec.seed = mix64(seed ^ (static_cast<std::uint64_t>(cls) << 56));
    spec.persistent = cls == FaultClass::LoadExt;
    // Bias the victim into the first half of the dynamic run: a
    // trigger near the end often finds no eligible instruction and
    // wastes the program on NoTrigger.
    spec.triggerInstr =
        opts.triggerFirst
            ? 0
            : mix64(spec.seed + 1) %
                  std::max<std::uint64_t>(1, gold.insts / 2 + 1);

    // Static analysis + the oracle's deadline provisioning, so EQ 4
    // speculation engages and the watchdog is armed.
    WcetAnalyzer analyzer(g.program);
    const DMissProfile dmiss = profileDataMisses(g.program);
    const DvsTable dvs;
    const WcetTable wcet(analyzer, dvs, &dmiss);
    const double deadline =
        opts.deadlineSlack *
        (opts.ovhdSeconds + wcet.taskSeconds(opts.fRec));
    res.deadlineSeconds = deadline;

    // ---- phase A: injected run under the restart-recovery runtime ----
    Rig<OooCpu> rig(g.program);
    RuntimeConfig cfg;
    cfg.deadlineSeconds = deadline;
    cfg.ovhdSeconds = opts.ovhdSeconds;
    cfg.dvsSoftwareCycles = opts.dvsSoftwareCycles;
    cfg.drainBudgetCycles = opts.drainBudgetCycles;
    cfg.recoveryPolicy = RecoveryPolicy::Restart;
    cfg.restartRestoreCycles = opts.restartRestoreCycles;
    VisaComplexRuntime rt(*rig.cpu, g.program, rig.mem, wcet, dvs, cfg);
    rt.pets().seed(profileComplexAets(g.program, wcet.numSubtasks()));

    if (opts.forceMiss)
        rt.forceNextMiss();

    FaultInjector inj(spec);
    rig.cpu->setFaultPort(&inj);

    Tracer local(1 << 14);
    Tracer *tr = opts.trace ? opts.trace : &local;
    if (!opts.trace)
        local.setKindMask(Tracer::maskFor("fault") |
                          Tracer::maskFor("checkpoint"));

    prof::BlockProfiler profiler(g.program);
    TaskStats ts;
    bool trapped = false;
    {
        ScopedTracer st(*tr);
        prof::ScopedProfiler sp(profiler);
        try {
            ts = rt.runTask();
        } catch (const std::exception &e) {
            // Wild PC / bad encoding: a machine check. A real system
            // enters the same missed-checkpoint recovery, so this
            // counts as watchdog-path detection (see header).
            trapped = true;
            res.report = std::string("trap: ") + e.what();
        }
    }
    rig.cpu->setFaultPort(nullptr);
    res.fault = inj.record();
    res.restarts = rt.stats().restarts;

    if (res.fault.fired) {
        // Join the corruption site to its basic block (PR 7 profiles).
        for (const prof::BlockProfileEntry &b : profiler.blocks()) {
            if (res.fault.pc >= b.pc &&
                res.fault.pc < b.pc + static_cast<Addr>(4 * b.words)) {
                res.blockPc = b.pc;
                res.blockEntries = b.entries;
                break;
            }
        }
    }

    if (!trapped) {
        res.completionSeconds = ts.completionSeconds;
        res.deadlineMet = ts.deadlineMet;
        res.checksum = ts.checksum;
    }

    if (!res.fault.fired && !trapped) {
        res.outcome = InjectOutcome::NoTrigger;
        return res;
    }

    // The plain twin (no AET instrumentation — cycle-counter reads
    // legitimately differ across pipelines) carries its own injector,
    // re-triggered inside the plain run's dynamic length. Built on
    // first use; shared by the paired-core vote and the lockstep
    // checker.
    GenParams pp = gp;
    pp.instrument = false;
    std::unique_ptr<GeneratedProgram> plainTwin;
    FaultSpec pspec = spec;
    const auto plain = [&]() -> const GeneratedProgram & {
        if (!plainTwin) {
            plainTwin =
                std::make_unique<GeneratedProgram>(generate(seed, pp));
            const Golden pg = goldenRun(plainTwin->program);
            pspec.triggerInstr =
                spec.triggerInstr %
                std::max<std::uint64_t>(1, pg.insts);
        }
        return *plainTwin;
    };

    // ---- paired-core vote (spare core, boundary-state compare) ----
    // Runs on every fired fault (not only watchdog escapes) so its
    // coverage is comparable against both detectors.
    if (opts.pairedCheck) {
        const Program &twin = plain().program;    // resolves pspec
        FaultInjector pairedInj(pspec);
        const chip::PairedCheckResult pc = chip::runPairedCheck(
            twin, &pairedInj, 4 * opts.maxInstructions);
        res.pairedChecked = true;
        res.pairedDetected = pc.detected;
    }

    if (trapped || ts.missedCheckpoint) {
        res.outcome = InjectOutcome::DetectedWatchdog;
        const Cycles fire = watchdogFireCycle(*tr, res.fault.cycle);
        if (fire > res.fault.cycle)
            res.detectionLatencyCycles = fire - res.fault.cycle;
        tr->record(EventKind::FaultDetect, fire ? fire : res.fault.cycle,
                   0, static_cast<std::uint64_t>(cls),
                   res.detectionLatencyCycles);
        return res;
    }

    // ---- phase B: architectural lockstep on the plain variant ----
    const Program &twin = plain().program;
    FaultInjector pinj(pspec);

    LockstepOptions lo;
    lo.maxInstructions = opts.maxInstructions;
    lo.prepareComplex = [&](OooCpu &c) { c.setFaultPort(&pinj); };
    bool caught = false;
    try {
        const LockstepResult lr = runLockstep(twin, lo);
        res.lockstepInstructions = lr.instructions;
        if (!lr.equivalent) {
            caught = true;
            res.report = lr.report;
        }
    } catch (const std::exception &e) {
        caught = true;    // the candidate trapped; the reference did not
        res.report = std::string("lockstep trap: ") + e.what();
    }
    if (caught) {
        res.outcome = InjectOutcome::DetectedLockstep;
        tr->record(EventKind::FaultDetect, res.fault.cycle, 1,
                   static_cast<std::uint64_t>(cls), 0);
        return res;
    }

    const bool corrupt = !ts.checksumReported ||
                         ts.checksum != res.goldenChecksum ||
                         !ts.deadlineMet;
    res.outcome = corrupt ? InjectOutcome::SilentCorruption
                          : InjectOutcome::SilentBenign;
    return res;
}

const char *
injectOutcomeName(InjectOutcome o)
{
    switch (o) {
      case InjectOutcome::NoTrigger:         return "no-trigger";
      case InjectOutcome::DetectedWatchdog:  return "watchdog";
      case InjectOutcome::DetectedLockstep:  return "lockstep";
      case InjectOutcome::SilentBenign:      return "silent-benign";
      case InjectOutcome::SilentCorruption:  return "silent-corruption";
    }
    return "?";
}

void
InjectClassCoverage::add(const InjectRunResult &r)
{
    ++programs;
    if (r.fault.fired)
        ++fired;
    restarts += static_cast<std::uint64_t>(r.restarts);
    switch (r.outcome) {
      case InjectOutcome::NoTrigger:
        ++noTrigger;
        break;
      case InjectOutcome::DetectedWatchdog:
        ++watchdog;
        if (r.detectionLatencyCycles) {
            if (!latencyMin || r.detectionLatencyCycles < latencyMin)
                latencyMin = r.detectionLatencyCycles;
            latencyMax = std::max(latencyMax, r.detectionLatencyCycles);
            latencySum += static_cast<double>(r.detectionLatencyCycles);
        }
        break;
      case InjectOutcome::DetectedLockstep:
        ++lockstep;
        break;
      case InjectOutcome::SilentBenign:
        ++silentBenign;
        break;
      case InjectOutcome::SilentCorruption:
        ++silentCorruption;
        break;
    }
    if (r.pairedChecked) {
        ++pairedChecked;
        if (r.pairedDetected)
            ++pairedDetected;
    }
    if (r.fault.fired && r.deadlineSeconds > 0 &&
        r.completionSeconds > 0) {
        const double frac = r.completionSeconds / r.deadlineSeconds;
        deadlineFracSum += frac;
        deadlineFracMax = std::max(deadlineFracMax, frac);
    }
}

InjectCampaignResult
runInjectCampaign(std::uint64_t first_seed, std::uint64_t count,
                  const std::vector<FaultClass> &classes,
                  const InjectRunOptions &opts,
                  void (*progress)(std::uint64_t, std::uint64_t))
{
    InjectCampaignResult res;
    if (classes.empty())
        return res;
    res.classes.resize(classes.size());
    for (std::size_t c = 0; c < classes.size(); ++c)
        res.classes[c].cls = classes[c];

    constexpr std::uint64_t batch = 256;
    for (std::uint64_t base = 0; base < count; base += batch) {
        const std::size_t n =
            static_cast<std::size_t>(std::min(batch, count - base));
        std::vector<InjectRunResult> runs(n);
        parallelFor(n, [&](std::size_t i) {
            const std::uint64_t index = base + i;
            runs[i] = runInjectProgram(
                first_seed + index,
                classes[static_cast<std::size_t>(index %
                                                 classes.size())],
                opts);
        });
        // Sequential merge in scan order: tables and escapes are
        // deterministic for any thread count.
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t index = base + i;
            res.classes[static_cast<std::size_t>(index %
                                                 classes.size())]
                .add(runs[i]);
            if (runs[i].outcome == InjectOutcome::SilentCorruption)
                res.escapes.push_back(std::move(runs[i]));
        }
        res.programs += n;
        if (progress)
            progress(res.programs, count);
    }
    return res;
}

std::string
formatCoverageTable(const InjectCampaignResult &res)
{
    bool paired = false;
    for (const InjectClassCoverage &c : res.classes)
        paired = paired || c.pairedChecked > 0;

    std::string out;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%-14s %7s %7s %9s %9s %8s %7s %10s %12s %9s",
                  "class", "runs", "fired", "watchdog", "lockstep",
                  "benign", "sdc", "no-trig", "latency-avg",
                  "ddl-max");
    out += line;
    if (paired) {
        std::snprintf(line, sizeof(line), " %13s", "paired");
        out += line;
    }
    out += '\n';
    for (const InjectClassCoverage &c : res.classes) {
        const std::uint64_t lat_n = c.watchdog;
        const double lat_avg =
            lat_n && c.latencySum > 0
                ? c.latencySum / static_cast<double>(lat_n)
                : 0.0;
        std::snprintf(
            line, sizeof(line),
            "%-14s %7llu %7llu %9llu %9llu %8llu %7llu %10llu %12.0f %9.3f",
            faultClassName(c.cls),
            static_cast<unsigned long long>(c.programs),
            static_cast<unsigned long long>(c.fired),
            static_cast<unsigned long long>(c.watchdog),
            static_cast<unsigned long long>(c.lockstep),
            static_cast<unsigned long long>(c.silentBenign),
            static_cast<unsigned long long>(c.silentCorruption),
            static_cast<unsigned long long>(c.noTrigger), lat_avg,
            c.deadlineFracMax);
        out += line;
        if (paired) {
            std::snprintf(
                line, sizeof(line), " %6llu/%-6llu",
                static_cast<unsigned long long>(c.pairedDetected),
                static_cast<unsigned long long>(c.pairedChecked));
            out += line;
        }
        out += '\n';
    }
    return out;
}

} // namespace visa::verify
