#include "verify/timing_cross.hh"

#include <bit>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <deque>
#include <memory>
#include <vector>

#include "cpu/ooo_cpu.hh"
#include "sim/trace.hh"
#include "verify/ref_ooo_cpu.hh"

namespace visa::verify
{

namespace
{

void
appendf(std::string &out, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

void
appendf(std::string &out, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    char buf[512];
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    out += buf;
}

bool
eventsEqual(const TraceEvent &a, const TraceEvent &b)
{
    return a.kind == b.kind && a.cycle == b.cycle && a.a == b.a &&
           a.b == b.b && a.c == b.c && a.d == b.d;
}

void
describeEvent(std::string &out, std::uint64_t index, const TraceEvent &e)
{
    const EventKindInfo &info = eventKindInfo(e.kind);
    appendf(out,
            "  #%-8" PRIu64 " [%10" PRIu64 "] %s.%s a=0x%" PRIX64
            " b=%" PRIu64 " c=%" PRIu64 "\n",
            index, e.cycle, info.category, info.name, e.a, e.b, e.c);
}

/** One core plus its private tracer and drained event stream. */
template <typename CpuT>
struct XSide
{
    XSide(const Program &prog, const char *label) : name(label)
    {
        mem.loadProgram(prog);
        cpu = std::make_unique<CpuT>(prog, mem, platform, memctrl);
        cpu->resetForTask();
    }

    void
    runSlice(Cycles n)
    {
        if (halted)
            return;
        ScopedTracer st(tracer);
        if (cpu->run(n).reason == StopReason::Halted)
            halted = true;
    }

    /** Move the tracer ring into the compare buffer. */
    bool
    drainEvents()
    {
        if (tracer.dropped() != 0)
            return false;    // slice too large for the ring: harness bug
        const std::size_t n = tracer.size();
        for (std::size_t i = 0; i < n; ++i)
            events.push_back(tracer.at(i));
        tracer.clear();
        return true;
    }

    /** Discard @p n compared events, keeping a context window. */
    void
    consume(std::size_t n, std::size_t keep)
    {
        for (std::size_t i = n >= keep ? n - keep : 0; i < n; ++i)
            history.push_back(events[i]);
        while (history.size() > keep)
            history.pop_front();
        events.erase(events.begin(),
                     events.begin() + static_cast<std::ptrdiff_t>(n));
        consumed += n;
    }

    /** Mode switches record through currentTracer(); install ours. */
    void
    toSimple()
    {
        ScopedTracer st(tracer);
        cpu->switchToSimple();
    }

    void
    toComplex()
    {
        ScopedTracer st(tracer);
        cpu->switchToComplex();
    }

    const char *name;
    MainMemory mem;
    Platform platform;
    MemController memctrl;
    std::unique_ptr<CpuT> cpu;
    Tracer tracer{1 << 16};
    std::vector<TraceEvent> events;
    std::deque<TraceEvent> history;
    std::uint64_t consumed = 0;
    bool halted = false;
};

template <typename SideT>
void
appendContext(std::string &out, const SideT &s, std::size_t upTo)
{
    appendf(out, "%s event stream:\n", s.name);
    std::uint64_t idx = s.consumed - s.history.size();
    for (const TraceEvent &e : s.history)
        describeEvent(out, idx++, e);
    idx = s.consumed;
    for (std::size_t i = 0; i < upTo && i < s.events.size(); ++i)
        describeEvent(out, idx++, s.events[i]);
}

template <typename RefT, typename CandT>
std::string
divergenceReport(const RefT &ref, const CandT &cand,
                 const TimingCrossOptions &opts, const char *what)
{
    std::string out;
    appendf(out, "timing divergence: %s\n", what);
    appendf(out, "  first differing event: #%" PRIu64 "\n", ref.consumed);
    const std::size_t upTo = static_cast<std::size_t>(opts.reportWindow);
    appendContext(out, ref, upTo);
    appendContext(out, cand, upTo);
    return out;
}

} // namespace

TimingCrossResult
runTimingCross(const Program &prog, const TimingCrossOptions &opts)
{
    TimingCrossResult res;

    XSide<RefOooCpu> ref(prog, "reference(per-cycle)");
    XSide<OooCpu> cand(prog, "candidate(event-driven)");
    if (opts.prepareCandidate)
        opts.prepareCandidate(*cand.cpu);

    const std::size_t keep = static_cast<std::size_t>(opts.reportWindow);
    // 0: complex, 1: simple-mode dwell pending, 2: done switching.
    int switchPhase = opts.modeSwitchAtCycle > 0 ? 0 : 2;
    Cycles switchBackAt = 0;

    for (;;) {
        ref.runSlice(opts.sliceCycles);
        cand.runSlice(opts.sliceCycles);
        if (!ref.drainEvents() || !cand.drainEvents()) {
            res.diverged = true;
            res.report = "timing cross-check internal error: "
                         "tracer ring overflowed a slice\n";
            return res;
        }

        const std::size_t n =
            std::min(ref.events.size(), cand.events.size());
        for (std::size_t i = 0; i < n; ++i) {
            if (!eventsEqual(ref.events[i], cand.events[i])) {
                res.diverged = true;
                ref.consume(i, keep);
                cand.consume(i, keep);
                res.report = divergenceReport(ref, cand, opts,
                                              "event streams differ");
                return res;
            }
        }
        ref.consume(n, keep);
        cand.consume(n, keep);
        res.eventsCompared += n;
        res.cycles = ref.cpu->cycles();

        if (ref.halted && cand.halted)
            break;
        if (ref.cpu->cycles() > opts.maxCycles ||
            cand.cpu->cycles() > opts.maxCycles) {
            res.timedOut = true;
            appendf(res.report,
                    "timing cross-check timeout: ref %s @%" PRIu64
                    ", cand %s @%" PRIu64 "\n",
                    ref.halted ? "halted" : "running", ref.cpu->cycles(),
                    cand.halted ? "halted" : "running",
                    cand.cpu->cycles());
            return res;
        }

        // Optional mid-run reconfiguration: both sides drain into
        // simple mode together (the ModeSwitchDrain events then pin
        // the exact drain length), dwell, and reconfigure back.
        if (switchPhase == 0 && !ref.halted && !cand.halted &&
            ref.cpu->cycles() >= opts.modeSwitchAtCycle &&
            cand.cpu->cycles() >= opts.modeSwitchAtCycle) {
            ref.toSimple();
            cand.toSimple();
            switchBackAt = std::max(ref.cpu->cycles(),
                                    cand.cpu->cycles()) +
                           opts.modeSwitchDwell;
            switchPhase = 1;
        } else if (switchPhase == 1 && !ref.halted && !cand.halted &&
                   ref.cpu->cycles() >= switchBackAt &&
                   cand.cpu->cycles() >= switchBackAt) {
            ref.toComplex();
            cand.toComplex();
            switchPhase = 2;
        }
    }

    // Tail events past the shorter stream.
    if (ref.events.size() != cand.events.size()) {
        res.diverged = true;
        res.report = divergenceReport(
            ref, cand, opts,
            ref.events.size() > cand.events.size()
                ? "reference emitted events the candidate did not"
                : "candidate emitted events the reference did not");
        return res;
    }

    std::string diff;
    if (ref.cpu->cycles() != cand.cpu->cycles())
        appendf(diff, "final cycles: ref=%" PRIu64 " cand=%" PRIu64 "\n",
                ref.cpu->cycles(), cand.cpu->cycles());
    if (ref.cpu->retired() != cand.cpu->retired())
        appendf(diff, "retired: ref=%" PRIu64 " cand=%" PRIu64 "\n",
                ref.cpu->retired(), cand.cpu->retired());
    if (ref.cpu->branchMispredicts() != cand.cpu->branchMispredicts())
        appendf(diff,
                "branch mispredicts: ref=%" PRIu64 " cand=%" PRIu64 "\n",
                ref.cpu->branchMispredicts(), cand.cpu->branchMispredicts());
    if (ref.platform.lastChecksum() != cand.platform.lastChecksum() ||
        ref.platform.checksumReported() !=
            cand.platform.checksumReported())
        appendf(diff, "checksum: ref=0x%08X(%d) cand=0x%08X(%d)\n",
                ref.platform.lastChecksum(),
                ref.platform.checksumReported(),
                cand.platform.lastChecksum(),
                cand.platform.checksumReported());
    // Architectural backstop: a datapath bug whose corrupted values
    // never reach a branch, an address, or the MMIO checksum is
    // invisible in the event stream, but it always leaves the final
    // register state different (the lockstep harness would catch it
    // per-instruction; here the end state suffices).
    const ArchState &ra = ref.cpu->arch();
    const ArchState &ca = cand.cpu->arch();
    if (ra.pc != ca.pc)
        appendf(diff, "final pc: ref=0x%" PRIX64 " cand=0x%" PRIX64 "\n",
                static_cast<std::uint64_t>(ra.pc),
                static_cast<std::uint64_t>(ca.pc));
    if (ra.fcc != ca.fcc)
        appendf(diff, "final fcc: ref=%d cand=%d\n", ra.fcc, ca.fcc);
    for (int r = 0; r < numIntRegs; ++r)
        if (ra.intRegs[static_cast<std::size_t>(r)] !=
            ca.intRegs[static_cast<std::size_t>(r)])
            appendf(diff, "final r%d: ref=0x%08X cand=0x%08X\n", r,
                    static_cast<unsigned>(
                        ra.intRegs[static_cast<std::size_t>(r)]),
                    static_cast<unsigned>(
                        ca.intRegs[static_cast<std::size_t>(r)]));
    for (int r = 0; r < numFpRegs; ++r)
        // Bit-pattern compare: value compare would flag identical NaNs.
        if (std::bit_cast<std::uint64_t>(
                ra.fpRegs[static_cast<std::size_t>(r)]) !=
            std::bit_cast<std::uint64_t>(
                ca.fpRegs[static_cast<std::size_t>(r)]))
            appendf(diff, "final f%d differs\n", r);
    if (!diff.empty()) {
        res.diverged = true;
        res.report = "timing divergence: final state differs\n" + diff;
        return res;
    }

    res.cycles = ref.cpu->cycles();
    res.equivalent = true;
    return res;
}

} // namespace visa::verify
