/**
 * @file
 * Repro-file format for fuzzer findings (the .s files under
 * tests/corpus/). A repro
 * file is a *directly assemblable* VPISA source whose header is a
 * block of `#` comment lines carrying metadata:
 *
 *     # visa-fuzz repro
 *     # seed: 12345
 *     # profile: mixed
 *     # note: final r5 mismatch (candidate zero-extended lb)
 *     <assembly...>
 *
 * The assembler ignores comments, so the same file feeds both the
 * regression-replay tests (assemble + runLockstep) and a human reading
 * the divergence story.
 */

#ifndef VISA_VERIFY_CORPUS_HH
#define VISA_VERIFY_CORPUS_HH

#include <cstdint>
#include <string>

namespace visa::verify
{

/** One reproducible failure case. */
struct ReproCase
{
    std::uint64_t seed = 0;
    std::string profile = "mixed";
    /** One-line description of the failure. */
    std::string note;
    /** Assembly source (possibly minimized). */
    std::string source;
};

/** Render @p r in the repro-file format above. */
std::string formatRepro(const ReproCase &r);

/** Parse a repro file's text (header comments + source). */
ReproCase parseRepro(const std::string &text);

/** Write @p r to @p path. @return false on I/O failure. */
bool saveRepro(const std::string &path, const ReproCase &r);

/** Load a repro file; raises FatalError if unreadable. */
ReproCase loadRepro(const std::string &path);

} // namespace visa::verify

#endif // VISA_VERIFY_CORPUS_HH
