/**
 * @file
 * Timing-equivalence oracle for the event-driven complex core.
 *
 * Runs the same program on the production OooCpu (event-driven wakeup,
 * idle-cycle skipping; cpu/ooo_cpu.cc) and on verify::RefOooCpu (the
 * frozen per-cycle stepper) with a private event tracer each, and
 * asserts the complete cycle-stamped event streams are identical:
 * every fetch, retire, squash, branch mispredict, cache miss, MSHR
 * transition, and mode-switch event must occur at the same cycle with
 * the same payload on both sides. Final cycle counts, retired
 * instruction counts, mispredict counts, and platform outputs are
 * compared as well.
 *
 * This is a far stronger check than comparing end-of-run totals: a
 * wakeup that fires one cycle late, or an idle skip that jumps past a
 * cycle in which a stage could have acted, shifts at least one event's
 * timestamp and is caught at the first occurrence, with a report that
 * pinpoints it. `visa-fuzz --cross-check-timing` drives this over the
 * random-program corpus; the `differential` ctest runs it on every
 * checked-in corpus program and 2k generated ones.
 *
 * Optionally the harness exercises the reconfiguration drains too:
 * at a caller-chosen cycle both sides switchToSimple() (draining the
 * in-flight window — the drain loop also idle-skips), run a while in
 * simple mode, and switch back. The ModeSwitchDrain event then encodes
 * the exact drain length on both sides.
 */

#ifndef VISA_VERIFY_TIMING_CROSS_HH
#define VISA_VERIFY_TIMING_CROSS_HH

#include <cstdint>
#include <functional>
#include <string>

#include "isa/program.hh"
#include "sim/types.hh"

namespace visa
{
class OooCpu;
} // namespace visa

namespace visa::verify
{

/** Oracle knobs. */
struct TimingCrossOptions
{
    /**
     * Cycles simulated per scheduling slice. Bounds tracer occupancy
     * between compare passes: with every kind enabled a cycle can emit
     * at most ~3 events per pipeline slot, so the default slice keeps
     * the 1<<16-event rings loss-free with a wide margin.
     */
    Cycles sliceCycles = 2048;
    /** Per-side cycle cap; exceeding it reports a timeout. */
    Cycles maxCycles = 20'000'000;
    /** Events shown around the first mismatch. */
    int reportWindow = 6;
    /**
     * When nonzero: once both sides pass this cycle, drain into simple
     * mode (exercising the drain loop's idle skipping), stay simple for
     * modeSwitchDwell cycles, then reconfigure back to complex.
     */
    Cycles modeSwitchAtCycle = 0;
    Cycles modeSwitchDwell = 4096;
    /**
     * Test hook: called on the candidate (event-driven) core after
     * construction, e.g. to enable the injected verification bug and
     * prove the oracle detects a one-sided behavior change.
     */
    std::function<void(OooCpu &)> prepareCandidate;
};

/** Outcome of one cross-check. */
struct TimingCrossResult
{
    /** True iff both cores produced identical timing. */
    bool equivalent = false;
    /** A concrete timing divergence was found (report describes it). */
    bool diverged = false;
    /** The cycle cap was hit before both sides halted. */
    bool timedOut = false;
    /** Cycles simulated on the reference side. */
    Cycles cycles = 0;
    /** Events compared equal. */
    std::uint64_t eventsCompared = 0;
    /** Human-readable divergence report; empty when equivalent. */
    std::string report;
};

/** Cross-check @p prog on the event-driven and reference cores. */
TimingCrossResult runTimingCross(const Program &prog,
                                 const TimingCrossOptions &opts = {});

} // namespace visa::verify

#endif // VISA_VERIFY_TIMING_CROSS_HH
