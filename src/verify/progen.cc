#include "verify/progen.hh"

#include <algorithm>
#include <array>
#include <cstring>

#include "isa/assembler.hh"
#include "sim/logging.hh"
#include "workloads/asm_builder.hh"

namespace visa::verify
{

const char *
profileName(GenProfile p)
{
    switch (p) {
      case GenProfile::Alu:    return "alu";
      case GenProfile::Branch: return "branch";
      case GenProfile::Memory: return "memory";
      case GenProfile::Mixed:  return "mixed";
    }
    return "?";
}

bool
parseProfile(std::string_view name, GenProfile &out)
{
    for (GenProfile p : {GenProfile::Alu, GenProfile::Branch,
                         GenProfile::Memory, GenProfile::Mixed}) {
        if (name == profileName(p)) {
            out = p;
            return true;
        }
    }
    return false;
}

namespace
{

/**
 * Register discipline. The sub-task snippets and the blt/bge family of
 * pseudo-ops clobber r1 and r25, so generated code never touches them.
 * Dedicated roles keep the generator simple and collision-free:
 *   r2..r15   value pool (seeded with random constants),
 *   r16,r17   loop counters by nesting depth,
 *   r24       checksum accumulator,
 *   r26       scratch-window base,
 *   r31       link register (JAL/JR leaf calls only).
 */
constexpr int poolLo = 2;
constexpr int poolHi = 15;
constexpr int loopReg0 = 16;
constexpr int ckReg = 24;
constexpr int baseReg = 26;

/** FP value pool f2..f9 (even-odd pairs unrestricted in VPISA). */
constexpr int fpoolLo = 2;
constexpr int fpoolHi = 9;

/** Scratch window: 128 words = 512 bytes, random-initialized. */
constexpr int scratchWords = 128;
constexpr int scratchBytes = scratchWords * 4;

constexpr int maxLoopDepth = 2;

/** Statement kinds the top-level mix chooses from. */
enum Kind
{
    KAluReg, KAluImm, KFp, KFpCmp, KLoad, KStore, KFpMem,
    KFwd, KLoop, KCall, KMix,
    KNumKinds
};

using Weights = std::array<int, KNumKinds>;

Weights
weightsFor(GenProfile p)
{
    //                    aluR aluI  fp  cmp  ld  st  fpm fwd loop call mix
    switch (p) {
      case GenProfile::Alu:
        return Weights{    45,  35,  0,   0,  0,  0,   0,  0,   0,   0, 20};
      case GenProfile::Branch:
        return Weights{    20,  15,  0,   3,  0,  0,   0, 27,  20,   0, 15};
      case GenProfile::Memory:
        return Weights{    12,   8,  0,   0, 28, 28,  10,  0,   0,   0, 14};
      case GenProfile::Mixed:
        return Weights{    16,  10,  8,   4, 13, 13,   5, 10,   8,   4,  9};
    }
    return Weights{};
}

struct Gen
{
    Gen(std::uint64_t seed, const GenParams &p)
        : params(p),
          // Fold the full 64-bit seed into the 32-bit LCG state.
          rng(static_cast<std::uint32_t>(seed ^ (seed >> 32)) ^ 0x9E3779B9u)
    {
    }

    const GenParams &params;
    Lcg rng;
    AsmBuilder b;
    int labelN = 0;
    int depth = 0;
    /** Product of enclosing loop bounds. */
    std::uint64_t weight = 1;
    /** Conservative dynamic-instruction bound accumulated so far. */
    std::uint64_t dyn = 0;
    /** Per-call dynamic cost of each emitted leaf function. */
    std::vector<std::uint64_t> funcCost;

    void cost(std::uint64_t instructions) { dyn += instructions * weight; }

    int pool() { return rng.range(poolLo, poolHi); }
    int fpool() { return rng.range(fpoolLo, fpoolHi); }
    std::string newLabel(const char *stem)
    {
        return std::string(stem) + std::to_string(labelN++);
    }

    // ---- single-instruction statements ----

    void
    aluReg()
    {
        static const char *ops[] = {"add", "sub", "mul", "div", "rem",
                                    "and", "or",  "xor", "nor", "slt",
                                    "sltu", "sllv", "srlv", "srav"};
        const char *op = ops[rng.range(0, 13)];
        b.ins("%s r%d, r%d, r%d", op, pool(), pool(), pool());
        cost(1);
    }

    void
    aluImm()
    {
        switch (rng.range(0, 7)) {
          case 0:
            b.ins("sll r%d, r%d, %d", pool(), pool(), rng.range(0, 31));
            break;
          case 1:
            b.ins("srl r%d, r%d, %d", pool(), pool(), rng.range(0, 31));
            break;
          case 2:
            b.ins("sra r%d, r%d, %d", pool(), pool(), rng.range(0, 31));
            break;
          case 3:
            b.ins("addi r%d, r%d, %d", pool(), pool(),
                  rng.range(-256, 255));
            break;
          case 4: {
            static const char *ops[] = {"andi", "ori", "xori"};
            b.ins("%s r%d, r%d, %d", ops[rng.range(0, 2)], pool(), pool(),
                  rng.range(0, 4095));
            break;
          }
          case 5:
            b.ins("slti r%d, r%d, %d", pool(), pool(), rng.range(-256, 255));
            break;
          case 6:
            b.ins("sltiu r%d, r%d, %d", pool(), pool(), rng.range(0, 511));
            break;
          default:
            b.ins("lui r%d, %d", pool(), rng.range(0, 65535));
        }
        cost(1);
    }

    void
    fp()
    {
        // No cvt.w.d here: unconstrained doubles can exceed the int32
        // range and the conversion would be host UB (flagged under
        // UBSan); cvt.w.d coverage lives in the directed ISA tests.
        static const char *two[] = {"add.d", "sub.d", "mul.d", "div.d"};
        if (rng.range(0, 3) == 0) {
            static const char *one[] = {"neg.d", "abs.d", "mov.d"};
            b.ins("%s f%d, f%d", one[rng.range(0, 2)], fpool(), fpool());
        } else {
            b.ins("%s f%d, f%d, f%d", two[rng.range(0, 3)], fpool(),
                  fpool(), fpool());
        }
        cost(1);
    }

    void
    fpCmp()
    {
        static const char *ops[] = {"c.eq.d", "c.lt.d", "c.le.d"};
        b.ins("%s f%d, f%d", ops[rng.range(0, 2)], fpool(), fpool());
        cost(1);
    }

    /** Naturally aligned offset for a @p width-byte scratch access. */
    int
    scratchOff(int width)
    {
        return rng.range(0, scratchBytes / width - 1) * width;
    }

    void
    load()
    {
        static const char *ops[] = {"lb", "lbu", "lh", "lhu", "lw"};
        static const int widths[] = {1, 1, 2, 2, 4};
        int k = rng.range(0, 4);
        b.ins("%s r%d, %d(r%d)", ops[k], pool(), scratchOff(widths[k]),
              baseReg);
        cost(1);
    }

    void
    store()
    {
        static const char *ops[] = {"sb", "sh", "sw"};
        static const int widths[] = {1, 2, 4};
        int k = rng.range(0, 2);
        b.ins("%s r%d, %d(r%d)", ops[k], pool(), scratchOff(widths[k]),
              baseReg);
        cost(1);
    }

    void
    fpMem()
    {
        if (rng.range(0, 1))
            b.ins("ldc1 f%d, %d(r%d)", fpool(), scratchOff(8), baseReg);
        else
            b.ins("sdc1 f%d, %d(r%d)", fpool(), scratchOff(8), baseReg);
        cost(1);
    }

    void
    mix()
    {
        b.ins("xor r%d, r%d, r%d", ckReg, ckReg, pool());
        cost(1);
    }

    // ---- structured statements ----

    /** A forward conditional branch over 1..3 simple statements. */
    void
    fwdBranch(const Weights &w)
    {
        std::string skip = newLabel("Lskip");
        switch (rng.range(0, w[KFp] > 0 || w[KFpCmp] > 0 ? 7 : 5)) {
          case 0:
            b.ins("beq r%d, r%d, %s", pool(), pool(), skip.c_str());
            break;
          case 1:
            b.ins("bne r%d, r%d, %s", pool(), pool(), skip.c_str());
            break;
          case 2:
            b.ins("blez r%d, %s", pool(), skip.c_str());
            break;
          case 3:
            b.ins("bgtz r%d, %s", pool(), skip.c_str());
            break;
          case 4:
            b.ins("bltz r%d, %s", pool(), skip.c_str());
            break;
          case 5:
            b.ins("bgez r%d, %s", pool(), skip.c_str());
            break;
          case 6:
            b.ins("bc1t %s", skip.c_str());
            break;
          default:
            b.ins("bc1f %s", skip.c_str());
        }
        cost(1);
        // The skipped statements are charged unconditionally: the
        // bound stays conservative whichever way the branch goes.
        int n = rng.range(1, 3);
        for (int i = 0; i < n; ++i)
            simpleStatement(w);
        b.label(skip);
    }

    /** A counted loop with an exact `.loopbound`. */
    void
    loop(const Weights &w)
    {
        const int bound = rng.range(2, 5);
        const int bodyStmts = rng.range(2, 4);
        // Worst-case addition: every body statement is a forward
        // branch over 3 two-instruction statements, plus the loop
        // overhead itself; skip the loop if it could blow the budget.
        const std::uint64_t worst =
            weight * (2 + static_cast<std::uint64_t>(bound) *
                              (static_cast<std::uint64_t>(bodyStmts) * 8 + 2));
        if (dyn + worst > params.maxDynamic || depth >= maxLoopDepth) {
            aluReg();
            return;
        }
        const int rc = loopReg0 + depth;
        std::string head = newLabel("Lloop");
        b.ins("li r%d, %d", rc, bound);
        cost(1);
        b.label(head);
        ++depth;
        weight *= static_cast<std::uint64_t>(bound);
        for (int i = 0; i < bodyStmts; ++i)
            statement(w, /*inLoop=*/true);
        b.ins("subi r%d, r%d, 1", rc, rc);
        b.ins(".loopbound %d", bound);
        b.ins("bgtz r%d, %s", rc, head.c_str());
        cost(2);
        weight /= static_cast<std::uint64_t>(bound);
        --depth;
    }

    void
    call()
    {
        if (funcCost.empty()) {
            aluReg();
            return;
        }
        int k = rng.range(0, static_cast<std::int32_t>(funcCost.size()) - 1);
        b.ins("jal Lfunc%d", k);
        dyn += (1 + funcCost[static_cast<std::size_t>(k)]) * weight;
    }

    // ---- statement dispatch ----

    /** A statement that is always a single instruction. */
    void
    simpleStatement(const Weights &w)
    {
        static const Kind simple[] = {KAluReg, KAluImm, KFp, KLoad, KMix};
        // Draw until we hit a kind the profile enables (KAluReg always
        // is); the loop terminates because every profile enables it.
        for (;;) {
            Kind k = simple[rng.range(0, 4)];
            if (w[k] == 0 && k != KAluReg)
                continue;
            switch (k) {
              case KAluImm: aluImm(); return;
              case KFp:     fp();     return;
              case KLoad:   load();   return;
              case KMix:    mix();    return;
              default:      aluReg(); return;
            }
        }
    }

    void
    statement(const Weights &w, bool inLoop)
    {
        int total = 0;
        for (int v : w)
            total += v;
        int pick = rng.range(0, total - 1);
        int k = 0;
        while (pick >= w[k]) {
            pick -= w[k];
            ++k;
        }
        switch (static_cast<Kind>(k)) {
          case KAluReg: aluReg(); break;
          case KAluImm: aluImm(); break;
          case KFp:     fp();     break;
          case KFpCmp:  fpCmp();  break;
          case KLoad:   load();   break;
          case KStore:  store();  break;
          case KFpMem:  fpMem();  break;
          case KFwd:    fwdBranch(w); break;
          case KLoop:
            if (inLoop && depth >= maxLoopDepth)
                aluReg();
            else
                loop(w);
            break;
          case KCall:   call();   break;
          default:      mix();    break;
        }
    }

    // ---- program skeleton ----

    void
    prologue(bool useFp)
    {
        b.ins("la r%d, scratch", baseReg);
        cost(2);
        if (useFp) {
            for (int f = fpoolLo; f <= fpoolHi; ++f) {
                b.ins("li r2, %d", rng.range(-9999, 9999));
                b.ins("cvt.d.w f%d, r2", f);
                cost(3);
            }
        }
        for (int r = poolLo; r <= poolHi; ++r) {
            b.ins("li r%d, %d",
                  r, static_cast<std::int32_t>(rng.next() & 0x7FFFFFFF) -
                         0x3FFFFFFF);
            cost(2);
        }
        b.ins("li r%d, %d", ckReg,
              static_cast<std::int32_t>(rng.next() & 0xFFFF));
        cost(2);
    }

    /** Mix live pool registers into the checksum before terminating. */
    void
    checksumFinish(bool touchesMemory)
    {
        for (int r = poolLo; r <= poolLo + 5; ++r) {
            b.ins("xor r%d, r%d, r%d", ckReg, ckReg, r);
            cost(1);
        }
        if (touchesMemory) {
            b.ins("lw r2, 0(r%d)", baseReg);
            b.ins("xor r%d, r%d, r2", ckReg, ckReg);
            cost(2);
        }
    }

    void
    leafFunctions()
    {
        for (std::size_t k = 0; k < funcCost.size(); ++k) {
            b.label("Lfunc" + std::to_string(k));
            int n = rng.range(2, 4);
            for (int i = 0; i < n; ++i) {
                // ALU-only bodies: no labels, loops, or further calls.
                static const char *ops[] = {"add", "xor", "sub", "or"};
                b.ins("%s r%d, r%d, r%d", ops[rng.range(0, 3)], pool(),
                      pool(), pool());
            }
            b.ins("jr r31");
        }
    }

    void
    scratchData()
    {
        b.beginData();
        std::vector<std::int32_t> init;
        init.reserve(scratchWords);
        for (int i = 0; i < scratchWords; ++i)
            init.push_back(static_cast<std::int32_t>(rng.next()));
        b.words("scratch", init);
    }
};

} // namespace

GeneratedProgram
generate(std::uint64_t seed, const GenParams &params)
{
    GeneratedProgram out;
    out.seed = seed;
    out.profile = params.profile;

    Gen g(seed, params);
    const Weights w = weightsFor(params.profile);
    const bool useFp = w[KFp] > 0 || w[KFpCmp] > 0 || w[KFpMem] > 0;
    const bool calls = params.allowCalls && w[KCall] > 0;

    // Reserve leaf-function slots up front so calls can be generated
    // anywhere in the body; bodies are emitted (and costed) first so
    // call sites charge the exact per-call cost.
    if (calls)
        g.funcCost.resize(static_cast<std::size_t>(g.rng.range(1, 2)));

    const int subtasks =
        params.instrument ? std::max(1, params.subtasks) : 1;
    const int stmts = std::max(1, params.statements);

    // Function bodies are placed after the halt but their per-call
    // cost must be known when call sites are costed: charge the worst
    // case (4 ALU ops + jr).
    if (calls)
        for (auto &c : g.funcCost)
            c = 5;

    if (params.instrument)
        g.b.subtaskBegin(1);
    g.cost(params.instrument ? 20 : 0);
    g.prologue(useFp);

    for (int s = 0; s < subtasks; ++s) {
        if (params.instrument && s > 0) {
            // The WCET analyzer requires sub-task markers to start a
            // basic block; a jump to the marker forces the boundary.
            const std::string seg =
                "Lseg_" + std::to_string(s + 1);
            g.b.ins("j %s", seg.c_str());
            g.b.label(seg);
            g.b.subtaskBegin(s + 1);
            g.cost(21);
        }
        const int per = std::max(1, stmts / subtasks);
        for (int i = 0; i < per; ++i)
            g.statement(w, /*inLoop=*/false);
    }

    g.checksumFinish(w[KLoad] > 0 || w[KStore] > 0 || w[KFpMem] > 0);
    if (params.instrument) {
        g.b.taskEnd("r24");
        g.cost(8);
    } else {
        g.b.ins("halt");
        g.cost(1);
    }
    if (calls)
        g.leafFunctions();
    g.scratchData();

    out.source = g.b.finish();
    out.dynamicBound = g.dyn;
    out.program = assemble(out.source);
    return out;
}

} // namespace visa::verify
