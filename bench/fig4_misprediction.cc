/**
 * @file
 * Reproduces paper Figure 4: power savings of the VISA-compliant
 * complex processor when 10%, 20%, and ~33% of the tasks are forced
 * to miss checkpoints (caches and predictors flushed at task start),
 * tight deadlines.
 *
 * Expected shape: savings decline roughly in proportion to the
 * misprediction rate (mispredicted tasks execute almost entirely in
 * simple mode at the recovery frequency), and — the paper's core
 * safety claim — every deadline is still met.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/power_arm.hh"
#include "sim/parallel.hh"

using namespace visa;
using namespace visa::bench;

int
main()
{
    const int tasks = taskCount();
    std::printf("Figure 4: power savings with induced mispredicted "
                "tasks (%d tasks per arm)\n", tasks);
    std::printf("(run at the minimum guaranteeable deadline: with the "
                "papers' near-zero residual slack,\n flushed tasks "
                "miss checkpoints and recover in simple mode; see "
                "EXPERIMENTS.md)\n\n");
    std::printf("%-7s %8s %8s %8s %8s %10s\n", "bench", "0%", "10%",
                "20%", "33%", "ckpt-miss");

    const std::vector<std::string> names = clabNames();
    std::vector<std::string> rows(names.size());
    std::vector<int> violations(names.size(), 0);
    parallelFor(names.size(), [&](std::size_t bi) {
        const std::string &name = names[bi];
        const ExperimentSetup &setup = cachedSetup(name);
        const double d = 1.02 * setup.minDeadline;
        ArmResult simple = runSimpleFixedArm(setup, d,
                                             ClockGating::Perfect,
                                             tasks, setup.dvs,
                                             *setup.wcet);
        violations[bi] += simple.deadlineMisses + simple.badChecksums;

        double saves[4];
        int misses[4];
        const int induce[4] = {0, 10, 5, 3};
        for (int i = 0; i < 4; ++i) {
            ArmResult c = runComplexArm(setup, d, ClockGating::Perfect,
                                        tasks, induce[i]);
            saves[i] = savingsPercent(c.avgPowerW, simple.avgPowerW);
            misses[i] = c.checkpointMisses;
            violations[bi] += c.deadlineMisses + c.badChecksums;
        }
        char line[160];
        std::snprintf(line, sizeof(line),
                      "%-7s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %4d/%d/%d\n",
                      name.c_str(), saves[0], saves[1], saves[2],
                      saves[3], misses[1], misses[2], misses[3]);
        rows[bi] = line;
    });

    int safety_violations = 0;
    for (std::size_t i = 0; i < names.size(); ++i) {
        std::fputs(rows[i].c_str(), stdout);
        safety_violations += violations[i];
    }
    std::printf("\ndeadline misses + checksum failures across all arms:"
                " %d (must be 0: mispredictions are safe by design)\n",
                safety_violations);
    std::printf("paper shape: decline proportional to the misprediction"
                " rate; all deadlines met\n");
    return safety_violations == 0 ? 0 : 1;
}
