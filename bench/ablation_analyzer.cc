/**
 * @file
 * Ablation of the WCET analyzer's design choices (DESIGN.md §6):
 * Healy-style inter-iteration pipeline overlap vs the sound-but-loose
 * drain-per-iteration fallback, and the per-iteration slack knob.
 * Reports WCET/actual tightness ratios at 1 GHz for every benchmark.
 *
 * Expected shape: overlap composition is what keeps the bounds near
 * the paper's 1.0-1.16 band for regular kernels; drain composition
 * inflates tight loops substantially while remaining sound.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace visa;
using namespace visa::bench;

namespace
{

double
ratioFor(const Workload &wl, const AnalyzerParams &params,
         const DMissProfile &dmiss, Cycles actual)
{
    WcetAnalyzer an(wl.program, params);
    WcetReport rep = an.analyze(1000, &dmiss);
    return static_cast<double>(rep.taskCycles) /
           static_cast<double>(actual);
}

} // anonymous namespace

int
main()
{
    std::printf("Analyzer ablation: WCET / actual (simple-fixed, "
                "1 GHz, cold)\n\n");
    std::printf("%-9s %10s %10s %10s %12s\n", "bench", "overlap",
                "drain", "slack=2", "sound(all)");
    bool sound = true;
    for (const auto &name : allWorkloadNames()) {
        Workload wl = makeWorkload(name);
        DMissProfile dmiss = profileDataMisses(wl.program);
        Rig<SimpleCpu> rig(wl.program);
        rig.cpu->run(20'000'000'000ULL);
        Cycles actual = rig.cpu->cycles();

        AnalyzerParams overlap;    // default composition
        AnalyzerParams drain;
        drain.maxOverlapPaths = 0;    // force T_iter = T_first
        AnalyzerParams slack;
        slack.iterSlack = 2;

        double r_overlap = ratioFor(wl, overlap, dmiss, actual);
        double r_drain = ratioFor(wl, drain, dmiss, actual);
        double r_slack = ratioFor(wl, slack, dmiss, actual);
        bool all_sound =
            r_overlap >= 1.0 && r_drain >= 1.0 && r_slack >= 1.0;
        sound = sound && all_sound;
        std::printf("%-9s %10.3f %10.3f %10.3f %12s\n", name.c_str(),
                    r_overlap, r_drain, r_slack,
                    all_sound ? "yes" : "VIOLATION");
    }
    std::printf("\nexpected shape: overlap ~1.0-1.2 (srt ~2), drain "
                "markedly looser, slack slightly above overlap; every "
                "column >= 1.0\n");
    return sound ? 0 : 1;
}
