/**
 * @file
 * One "arm" of the power experiments (Figs. 2-4): a processor + its
 * run-time system + a power meter, executing N periodic task
 * instances and reporting average power, chosen frequencies, and
 * safety counters.
 */

#ifndef VISA_BENCH_POWER_ARM_HH
#define VISA_BENCH_POWER_ARM_HH

#include <cstdlib>
#include <set>

#include "bench/bench_util.hh"

namespace visa::bench
{

/** Result of running one experiment arm. */
struct ArmResult
{
    double avgPowerW = 0.0;
    MHz lastFSpec = 0;
    MHz lastFRec = 0;
    int deadlineMisses = 0;
    int checkpointMisses = 0;
    int badChecksums = 0;
};

/** Task-instance count (paper: 200; scaled default 60, see
 *  EXPERIMENTS.md; override with VISA_TASKS). */
inline int
taskCount()
{
    if (const char *env = std::getenv("VISA_TASKS"))
        return std::max(1, std::atoi(env));
    return 60;
}

/**
 * Run @p tasks instances of the benchmark on the VISA-compliant
 * complex processor under the EQ 4 run-time system.
 *
 * @param induce_every flush caches/predictors at the start of every
 *        induce_every-th task (0 = never) — the Fig. 4 mechanism
 */
inline ArmResult
runComplexArm(const ExperimentSetup &setup, double deadline,
              ClockGating gating, int tasks, int induce_every = 0)
{
    Rig<OooCpu> rig(setup.wl.program);
    RuntimeConfig cfg = setup.runtimeConfig(deadline);
    VisaComplexRuntime rt(*rig.cpu, setup.wl.program, rig.mem,
                          *setup.wcet, setup.dvs, cfg);
    // Off-line PET seeding (Rotenberg): profile at the frequency the
    // solver would pick, iterating so the cycle counts are measured in
    // the right clock domain (memory stalls scale with frequency).
    MHz probe = setup.dvs.maxFreq();
    for (int it = 0; it < 3; ++it) {
        rt.pets().seed(profileComplexAets(
            setup.wl.program, setup.wl.numSubtasks, 1.03, probe));
        FreqPair pair = solveVisaSpeculation(
            *setup.wcet, rt.pets(), setup.dvs, deadline,
            cfg.ovhdSeconds,
            cfg.dvsSoftwareCycles + cfg.drainBudgetCycles);
        if (!pair.feasible || pair.fSpec == probe)
            break;
        probe = pair.fSpec;
    }
    PowerMeter meter(*rig.cpu, complexEnergyModel(), setup.dvs, gating);
    rt.attachMeter(&meter);

    ArmResult res;
    for (int t = 0; t < tasks; ++t) {
        // Offset the induced flushes from the re-evaluation tasks so
        // the PET refresh does not coincide with the disturbance.
        bool induce = induce_every > 0 &&
                      (t % induce_every) == induce_every / 2;
        TaskStats ts = rt.runTask(induce);
        res.lastFSpec = ts.fSpec;
        res.lastFRec = ts.fRec;
        if (!ts.checksumReported ||
            ts.checksum != setup.wl.expectedChecksum)
            ++res.badChecksums;
    }
    res.avgPowerW = meter.averagePowerWatts();
    res.deadlineMisses = rt.stats().deadlineMisses;
    res.checkpointMisses = rt.stats().checkpointMisses;
    return res;
}

/**
 * Run @p tasks instances on the explicitly-safe simple-fixed
 * processor (EQ 2 speculation only when beneficial).
 *
 * @param dvs DVS table for this processor (Fig. 3 passes the 1.5x
 *        frequency-advantage table)
 */
inline ArmResult
runSimpleFixedArm(const ExperimentSetup &setup, double deadline,
                  ClockGating gating, int tasks, const DvsTable &dvs,
                  const WcetTable &wcet, int induce_every = 0)
{
    Rig<SimpleCpu> rig(setup.wl.program);
    SimpleFixedRuntime rt(*rig.cpu, setup.wl.program, rig.mem, wcet,
                          dvs, setup.runtimeConfig(deadline));
    PowerMeter meter(*rig.cpu, simpleFixedEnergyModel(), dvs, gating);
    rt.attachMeter(&meter);

    ArmResult res;
    for (int t = 0; t < tasks; ++t) {
        bool induce = induce_every > 0 && (t % induce_every) == 0;
        TaskStats ts = rt.runTask(induce);
        res.lastFSpec = ts.fSpec;
        res.lastFRec = ts.fRec;
        if (!ts.checksumReported ||
            ts.checksum != setup.wl.expectedChecksum)
            ++res.badChecksums;
    }
    res.avgPowerW = meter.averagePowerWatts();
    res.deadlineMisses = rt.stats().deadlineMisses;
    res.checkpointMisses = rt.stats().checkpointMisses;
    return res;
}

/** Percentage power saving of @p complex_w relative to @p simple_w. */
inline double
savingsPercent(double complex_w, double simple_w)
{
    return 100.0 * (1.0 - complex_w / simple_w);
}

} // namespace visa::bench

#endif // VISA_BENCH_POWER_ARM_HH
