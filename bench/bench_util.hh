/**
 * @file
 * Shared setup for the experiment-reproduction harnesses: one fully
 * analyzed benchmark (analyzer, D-miss trace padding, per-frequency
 * WCET tables, tight/loose deadlines derived the paper's way).
 */

#ifndef VISA_BENCH_BENCH_UTIL_HH
#define VISA_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/runtime.hh"
#include "core/scheduler.hh"
#include "sim/builder.hh"
#include "core/wcet_table.hh"
#include "power/dvs.hh"
#include "power/energy_model.hh"
#include "power/meter.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"
#include "wcet/analyzer.hh"
#include "workloads/clab.hh"
#include "workloads/tasksets.hh"

namespace visa::bench
{

/**
 * Deadline derivation (paper §5.3): the tight deadline is the
 * tightest guaranteeable (it drives simple-fixed to the 800-900 MHz
 * range); the loose deadline targets ~600 MHz for simple-fixed. We
 * realize both as the simple-fixed WCET at those operating points.
 */
inline constexpr MHz tightDeadlineFreq = 850;
inline constexpr MHz looseDeadlineFreq = 600;

/**
 * The scaled-down reconfiguration overhead used by the experiments:
 * benchmark inputs are ~20x smaller than the paper's (EXPERIMENTS.md),
 * so the 20 us switch overhead scales to 2 us to keep its share of
 * the deadline comparable.
 */
inline constexpr double experimentOvhdSeconds = 2e-6;

/** Everything needed to run experiments on one benchmark. */
struct ExperimentSetup
{
    Workload wl;
    std::unique_ptr<WcetAnalyzer> analyzer;
    DMissProfile dmiss;
    DvsTable dvs;    ///< baseline 37-point table
    std::unique_ptr<WcetTable> wcet;
    double tightDeadline = 0.0;
    double looseDeadline = 0.0;
    /** Minimum EQ 4-guaranteeable deadline (Fig. 4 stress runs). */
    double minDeadline = 0.0;
    /**
     * Measured complex/simple cycle ratio: the per-benchmark factor
     * §4.3 prescribes for mapping simple-mode AETs back to the
     * complex-mode domain ("based on the relative performance of the
     * complex and simple modes"), with a safety margin so scaled PETs
     * never underestimate.
     */
    double modeRatio = 0.28;

    RuntimeConfig
    runtimeConfig(double deadline) const
    {
        RuntimeConfig cfg;
        cfg.deadlineSeconds = deadline;
        cfg.ovhdSeconds = experimentOvhdSeconds;
        // Scaled with the ~20x benchmark shrink (EXPERIMENTS.md).
        cfg.dvsSoftwareCycles = 500;
        cfg.drainBudgetCycles = 512;
        cfg.simpleModeAetScale = std::min(1.0, 1.15 * modeRatio);
        return cfg;
    }
};

/**
 * One wired machine per experiment arm — a typed view over a
 * SimBuilder product, so every arm constructs through the same path
 * as the tools.
 */
template <typename CpuT>
struct Rig
{
    explicit Rig(const Program &prog)
        : sim(SimBuilder()
                  .program(prog)
                  .cpu(std::is_same_v<CpuT, SimpleCpu>
                           ? CpuKind::Simple
                           : CpuKind::Complex)
                  .build()),
          mem(sim->mem()), platform(sim->platform()),
          memctrl(sim->memctrl()),
          cpu(static_cast<CpuT *>(&sim->cpu()))
    {
    }

    std::unique_ptr<Sim> sim;
    MainMemory &mem;
    Platform &platform;
    MemController &memctrl;
    CpuT *cpu;
};

/**
 * The tightest deadline EQ 4 can guarantee with profiled PETs
 * (bisected over the feasibility predicate), mirroring the paper's
 * "tightest that can be guaranteed with frequency speculation".
 */
inline double
minGuaranteeableDeadline(const WcetTable &wcet, const DvsTable &dvs,
                         const std::vector<std::uint64_t> &pet_seed,
                         const RuntimeConfig &cfg)
{
    PetEstimator pets(wcet.numSubtasks(), cfg.petPolicy);
    pets.seed(pet_seed);
    const Cycles extra = cfg.dvsSoftwareCycles + cfg.drainBudgetCycles;
    double lo = wcet.taskSeconds(dvs.maxFreq());
    double hi = wcet.taskSeconds(dvs.minFreq());
    for (int it = 0; it < 48; ++it) {
        double mid = 0.5 * (lo + hi);
        bool ok = solveVisaSpeculation(wcet, pets, dvs, mid,
                                       cfg.ovhdSeconds, extra)
                      .feasible;
        (ok ? hi : lo) = mid;
    }
    return hi;
}

/**
 * Analyze benchmark @p name into @p s, which must outlive every use:
 * the analyzer (and through it the WCET machinery) keeps a reference
 * to s.wl.program, so s must not be moved afterwards.
 */
inline void
initSetup(ExperimentSetup &s, const std::string &name)
{
    s.wl = makeWorkload(name);
    s.analyzer = std::make_unique<WcetAnalyzer>(s.wl.program);
    s.dmiss = profileDataMisses(s.wl.program);
    s.wcet = std::make_unique<WcetTable>(*s.analyzer, s.dvs, &s.dmiss);
    // Tight: the tightest guaranteeable with speculation (see above,
    // with a 5% margin), but no tighter than the simple-fixed WCET at
    // the 850 MHz point. Loose: the ~600 MHz basis (paper §5.3).
    //
    // The two calibration rigs are independent machines sharing only
    // the immutable Program, so they run as concurrent arms.
    {
        Cycles simple_cycles = 0;
        Cycles complex_cycles = 0;
        parallelFor(2, [&](std::size_t arm) {
            if (arm == 0) {
                Rig<SimpleCpu> simple(s.wl.program);
                simple.cpu->run(20'000'000'000ULL);
                simple_cycles = simple.cpu->cycles();
            } else {
                Rig<OooCpu> complex_rig(s.wl.program);
                complex_rig.cpu->run(20'000'000'000ULL);
                complex_cycles = complex_rig.cpu->cycles();
            }
        });
        s.modeRatio = static_cast<double>(complex_cycles) /
                      static_cast<double>(simple_cycles);
    }
    RuntimeConfig cfg = s.runtimeConfig(1.0);
    double min_d = minGuaranteeableDeadline(
        *s.wcet, s.dvs,
        profileComplexAets(s.wl.program, s.wl.numSubtasks), cfg);
    s.minDeadline = min_d;
    s.tightDeadline =
        std::max(s.wcet->taskSeconds(tightDeadlineFreq), 1.05 * min_d);
    s.looseDeadline =
        std::max(s.wcet->taskSeconds(looseDeadlineFreq),
                 1.25 * s.tightDeadline);
}

inline ExperimentSetup
makeSetup(const std::string &name)
{
    // NRVO keeps the analyzer's internal reference to s.wl.program
    // valid; callers that need a heap-stable setup use cachedSetup.
    ExperimentSetup s;
    initSetup(s, name);
    return s;
}

/**
 * Process-wide cache of analyzed benchmarks, so the campaign binaries
 * build each ExperimentSetup once no matter how many experiments reuse
 * it. Thread-safe: arms running on the pool may request setups
 * concurrently; distinct benchmarks build in parallel, a shared one
 * builds exactly once (call_once) while the others wait.
 */
inline const ExperimentSetup &
cachedSetup(const std::string &name)
{
    struct Entry
    {
        std::once_flag once;
        std::unique_ptr<ExperimentSetup> setup;
    };
    static std::mutex map_mutex;
    static std::map<std::string, Entry> entries;

    Entry *e;
    {
        std::lock_guard<std::mutex> lock(map_mutex);
        e = &entries[name];    // node-based: stable across inserts
    }
    std::call_once(e->once, [&] {
        // Construct in place, then analyze: moving a finished setup
        // would invalidate the analyzer's reference to wl.program.
        e->setup = std::make_unique<ExperimentSetup>();
        initSetup(*e->setup, name);
    });
    return *e->setup;
}

/**
 * Build scheduler task definitions for @p members, deriving each
 * task's execution-time budget and period from its analyzed WCETs:
 *
 *  - budget B_i = budget_stretch * tightDeadline_i, so every task is
 *    comfortably single-task feasible (EQ 4) within its budget;
 *  - period T_i = n * B_i * periodScale_i / util_target, so the set's
 *    utilization sums to util_target when all period scales are 1
 *    (larger scales lower that member's share below target).
 *
 * The referenced programs/WCET tables/DVS tables live in the
 * process-wide cachedSetup() entries, which outlive any scheduler.
 */
inline std::vector<SchedTaskDef>
makeTaskSetDefs(const std::vector<TaskSetMemberSpec> &members,
                double util_target, double budget_stretch = 1.25)
{
    if (members.empty())
        fatal("task set has no members");
    if (util_target <= 0.0)
        fatal("task-set utilization target must be positive");
    const double n = static_cast<double>(members.size());
    std::vector<SchedTaskDef> defs;
    for (const TaskSetMemberSpec &m : members) {
        const ExperimentSetup &s = cachedSetup(m.workload);
        SchedTaskDef d;
        d.name = m.workload;
        d.program = &s.wl.program;
        d.wcet = s.wcet.get();
        d.dvs = &s.dvs;
        const double budget = budget_stretch * s.tightDeadline;
        d.runtime = s.runtimeConfig(budget);
        d.periodSeconds = n * budget * m.periodScale / util_target;
        d.expectedChecksum = s.wl.expectedChecksum;
        defs.push_back(std::move(d));
    }
    return defs;
}

} // namespace visa::bench

#endif // VISA_BENCH_BENCH_UTIL_HH
