/**
 * @file
 * Reproduces paper Figure 2: power savings of the VISA-compliant
 * complex processor relative to the explicitly-safe simple-fixed
 * processor, for tight (T) and loose (L) deadlines, with perfect
 * clock gating and with 10% standby power.
 *
 * Expected shape: 43-61% savings for tight deadlines without standby
 * power (paper), higher with standby power; smaller but substantial
 * (22-48%) for loose deadlines. Simple-fixed runs in the 800-900 MHz
 * range (tight) vs 150-325 MHz for the complex processor.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/power_arm.hh"
#include "sim/parallel.hh"

using namespace visa;
using namespace visa::bench;

int
main()
{
    const int tasks = taskCount();
    std::printf("Figure 2: power savings of VISA-compliant complex vs "
                "simple-fixed (%d tasks per arm)\n\n", tasks);
    std::printf("%-7s %4s %9s %9s %8s %9s %9s %8s %7s %7s\n",
                "bench", "dl", "Psimp(W)", "Pcplx(W)", "save%",
                "Psimp10", "Pcplx10", "save10%", "fsimp", "fcplx");

    // Each benchmark is an independent arm group (private rigs, shared
    // immutable setup): run them on the pool, print in input order.
    const std::vector<std::string> names = clabNames();
    std::vector<std::string> rows(names.size());
    std::vector<int> violations(names.size(), 0);
    parallelFor(names.size(), [&](std::size_t i) {
        const std::string &name = names[i];
        const ExperimentSetup &setup = cachedSetup(name);
        struct DlCase
        {
            const char *tag;
            double deadline;
        } cases[] = {{"T", setup.tightDeadline},
                     {"L", setup.looseDeadline}};
        for (const auto &c : cases) {
            ArmResult sp = runSimpleFixedArm(setup, c.deadline,
                                             ClockGating::Perfect, tasks,
                                             setup.dvs, *setup.wcet);
            ArmResult cp = runComplexArm(setup, c.deadline,
                                         ClockGating::Perfect, tasks);
            ArmResult ss = runSimpleFixedArm(setup, c.deadline,
                                             ClockGating::Standby10,
                                             tasks, setup.dvs,
                                             *setup.wcet);
            ArmResult cs = runComplexArm(setup, c.deadline,
                                         ClockGating::Standby10, tasks);
            violations[i] += sp.deadlineMisses + cp.deadlineMisses +
                             ss.deadlineMisses + cs.deadlineMisses +
                             sp.badChecksums + cp.badChecksums;
            char line[160];
            std::snprintf(line, sizeof(line),
                          "%-7s %4s %9.3f %9.3f %7.1f%% %9.3f %9.3f "
                          "%7.1f%% %7u %7u\n",
                          name.c_str(), c.tag, sp.avgPowerW, cp.avgPowerW,
                          savingsPercent(cp.avgPowerW, sp.avgPowerW),
                          ss.avgPowerW, cs.avgPowerW,
                          savingsPercent(cs.avgPowerW, ss.avgPowerW),
                          sp.lastFSpec, cp.lastFSpec);
            rows[i] += line;
        }
    });

    int safety_violations = 0;
    for (std::size_t i = 0; i < names.size(); ++i) {
        std::fputs(rows[i].c_str(), stdout);
        safety_violations += violations[i];
    }
    std::printf("\ndeadline misses + checksum failures across all arms:"
                " %d (must be 0)\n", safety_violations);
    std::printf("paper shape: tight 43-61%% savings (no standby), loose "
                "22-48%%; savings higher with 10%% standby\n");
    return safety_violations == 0 ? 0 : 1;
}
