/**
 * @file
 * google-benchmark microbenchmarks of the infrastructure itself:
 * assembler throughput, raw MainMemory access, simulator speed of both
 * pipelines (per simulated instruction/cycle), the VisaTimer
 * recurrence, the WCET analyzer, and the frequency-speculation solver.
 */

#include <benchmark/benchmark.h>

#include "bench/bench_util.hh"
#include "cpu/visa_timing.hh"
#include "isa/assembler.hh"

using namespace visa;
using namespace visa::bench;

namespace
{

const Workload &
cachedWorkload(const std::string &name)
{
    // Guarded: benchmark bodies may run while campaign code elsewhere
    // in the process uses the pool, and future benchmarks may be
    // multi-threaded themselves.
    static std::mutex m;
    static std::map<std::string, Workload> cache;
    std::lock_guard<std::mutex> lock(m);
    auto it = cache.find(name);
    if (it == cache.end())
        it = cache.emplace(name, makeWorkload(name)).first;
    return it->second;
}

void
BM_AssembleMm(benchmark::State &state)
{
    std::string src = makeMm().source;
    for (auto _ : state) {
        Program p = assemble(src);
        benchmark::DoNotOptimize(p.text.data());
    }
}
BENCHMARK(BM_AssembleMm);

// ---- raw MainMemory throughput (the tentpole fast path) ----

void
BM_MemoryRead(benchmark::State &state)
{
    MainMemory mem;
    for (Addr a = 0; a < 64 * 1024; a += 4)
        mem.writeWord(a, a);
    std::uint64_t sum = 0;
    for (auto _ : state) {
        for (Addr a = 0; a < 64 * 1024; a += 4)
            sum += mem.read(a, 4);
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * (64 * 1024 / 4));
}
BENCHMARK(BM_MemoryRead);

void
BM_MemoryWrite(benchmark::State &state)
{
    MainMemory mem;
    for (auto _ : state) {
        for (Addr a = 0; a < 64 * 1024; a += 4)
            mem.write(a, a, 4);
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() * (64 * 1024 / 4));
}
BENCHMARK(BM_MemoryWrite);

void
BM_MemoryReadCrossPage(benchmark::State &state)
{
    // Every access straddles a 4 KB page boundary: the slow path.
    MainMemory mem;
    for (Addr a = 0; a < 64 * 1024; a += 4)
        mem.writeWord(a, a);
    std::uint64_t sum = 0;
    for (auto _ : state) {
        for (Addr a = 4094; a < 60 * 1024; a += 4096)
            sum += mem.read(a, 4);
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * 14);
}
BENCHMARK(BM_MemoryReadCrossPage);

void
BM_MemoryBulkCopy(benchmark::State &state)
{
    // Page-split memcpy path (readBytes/writeBytes), 16 KB per pass.
    MainMemory mem;
    std::vector<std::uint8_t> buf(16 * 1024, 0xA5);
    for (auto _ : state) {
        mem.writeBytes(100, buf.data(), buf.size());
        mem.readBytes(100, buf.data(), buf.size());
        benchmark::DoNotOptimize(buf.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 2 * 16 * 1024);
}
BENCHMARK(BM_MemoryBulkCopy);

void
BM_LoadProgram(benchmark::State &state)
{
    const Workload &wl = cachedWorkload("mm");
    MainMemory mem;
    for (auto _ : state) {
        mem.clear();
        mem.loadProgram(wl.program);
        benchmark::ClobberMemory();
    }
}
BENCHMARK(BM_LoadProgram);

// ---- raw functional-execution throughput (fetch/decode fast path) ----

void
BM_ExecCoreStep(benchmark::State &state)
{
    // Functional-core throughput via the block-granular fast path
    // (runFunctional); the per-call step() API is measured by
    // BM_ExecCoreStepUncached below and by the pipeline benchmarks.
    const Workload &wl = cachedWorkload("mm");
    MainMemory mem;
    mem.loadProgram(wl.program);
    Platform platform;
    ExecCore core(wl.program, mem, platform);
    std::int64_t insts = 0;
    for (auto _ : state) {
        core.reset();
        ExecCore::FuncRunResult r =
            core.runFunctional(20'000'000'000ULL);
        insts += static_cast<std::int64_t>(r.insts);
        benchmark::DoNotOptimize(core.state().pc);
    }
    state.SetItemsProcessed(insts);
}
BENCHMARK(BM_ExecCoreStep)->Unit(benchmark::kMillisecond);

void
BM_ExecCoreStepUncached(benchmark::State &state)
{
    // The --no-block-cache path: per-instruction fetch/decode-dispatch.
    // The delta against BM_ExecCoreStep is the translation cache's win.
    const Workload &wl = cachedWorkload("mm");
    MainMemory mem;
    mem.loadProgram(wl.program);
    Platform platform;
    ExecCore core(wl.program, mem, platform);
    core.setBlockCacheEnabled(false);
    std::int64_t insts = 0;
    for (auto _ : state) {
        core.reset();
        ExecInfo info;
        do {
            info = core.step(false);
            ++insts;
        } while (!info.halted);
        benchmark::DoNotOptimize(core.state().pc);
    }
    state.SetItemsProcessed(insts);
}
BENCHMARK(BM_ExecCoreStepUncached)->Unit(benchmark::kMillisecond);

void
BM_VisaTimerRecurrence(benchmark::State &state)
{
    TimingRecord rec;
    rec.exLatency = 1;
    VisaTimer timer;
    timer.reset();
    for (auto _ : state) {
        timer.consume(rec);
        benchmark::DoNotOptimize(timer);
        benchmark::ClobberMemory();
    }
    benchmark::DoNotOptimize(timer.totalCycles());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VisaTimerRecurrence);

void
BM_SimpleCpuRun(benchmark::State &state)
{
    const Workload &wl = cachedWorkload("mm");
    std::int64_t insts = 0;
    for (auto _ : state) {
        Rig<SimpleCpu> rig(wl.program);
        rig.cpu->run(20'000'000'000ULL);
        insts += static_cast<std::int64_t>(rig.cpu->retired());
        benchmark::DoNotOptimize(rig.cpu->cycles());
    }
    state.SetItemsProcessed(insts);    // guest instructions/second
}
BENCHMARK(BM_SimpleCpuRun)->Unit(benchmark::kMillisecond);

void
BM_OooCpuRun(benchmark::State &state)
{
    const Workload &wl = cachedWorkload("mm");
    for (auto _ : state) {
        Rig<OooCpu> rig(wl.program);
        rig.cpu->run(20'000'000'000ULL);
        benchmark::DoNotOptimize(rig.cpu->cycles());
    }
}
BENCHMARK(BM_OooCpuRun)->Unit(benchmark::kMillisecond);

void
BM_OooCpuSimpleMode(benchmark::State &state)
{
    const Workload &wl = cachedWorkload("mm");
    for (auto _ : state) {
        Rig<OooCpu> rig(wl.program);
        rig.cpu->switchToSimple();
        rig.cpu->run(20'000'000'000ULL);
        benchmark::DoNotOptimize(rig.cpu->cycles());
    }
}
BENCHMARK(BM_OooCpuSimpleMode)->Unit(benchmark::kMillisecond);

void
BM_WcetAnalyze(benchmark::State &state)
{
    const Workload &wl = cachedWorkload("fft");
    WcetAnalyzer an(wl.program);
    for (auto _ : state) {
        WcetReport rep = an.analyze(1000);
        benchmark::DoNotOptimize(rep.taskCycles);
    }
}
BENCHMARK(BM_WcetAnalyze)->Unit(benchmark::kMillisecond);

void
BM_WcetAnalyzerConstruction(benchmark::State &state)
{
    const Workload &wl = cachedWorkload("adpcm");
    for (auto _ : state) {
        WcetAnalyzer an(wl.program);
        benchmark::DoNotOptimize(an.numSubtasks());
    }
}
BENCHMARK(BM_WcetAnalyzerConstruction)->Unit(benchmark::kMillisecond);

void
BM_FreqSpecSolver(benchmark::State &state)
{
    const Workload &wl = cachedWorkload("lms");
    WcetAnalyzer an(wl.program);
    DvsTable dvs;
    DMissProfile dmiss = profileDataMisses(wl.program);
    WcetTable wcet(an, dvs, &dmiss);
    PetEstimator pets(wl.numSubtasks, PetPolicy{});
    pets.seed(profileComplexAets(wl.program, wl.numSubtasks));
    double deadline = wcet.taskSeconds(700);
    for (auto _ : state) {
        FreqPair p = solveVisaSpeculation(wcet, pets, dvs, deadline,
                                          2e-6, 1000);
        benchmark::DoNotOptimize(p.fSpec);
    }
}
BENCHMARK(BM_FreqSpecSolver);

} // anonymous namespace

BENCHMARK_MAIN();
