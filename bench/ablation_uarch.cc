/**
 * @file
 * Microarchitecture sweep: how much machine does the VISA framework
 * actually harvest? Since the VISA decouples analysis from the
 * implementation, *any* complex configuration can sit under it — this
 * sweep varies superscalar width and window size and reports the
 * speedup over the explicitly-safe pipeline (the "simple/complex"
 * column of Table 3) for each configuration, demonstrating the
 * "arbitrarily complex implementation" claim of §1.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace visa;
using namespace visa::bench;

namespace
{

struct Config
{
    const char *name;
    OooParams params;
};

std::vector<Config>
configs()
{
    std::vector<Config> v;
    {
        OooParams p;
        p.fetchWidth = p.dispatchWidth = p.issueWidth = p.retireWidth = 2;
        p.robSize = 64;
        p.iqSize = 32;
        p.lsqSize = 32;
        p.dcachePorts = 1;
        v.push_back({"2-wide/64", p});
    }
    {
        OooParams p;    // the paper's configuration
        v.push_back({"4-wide/128", p});
    }
    {
        OooParams p;
        p.fetchWidth = p.dispatchWidth = p.issueWidth = p.retireWidth = 8;
        p.robSize = 256;
        p.iqSize = 128;
        p.lsqSize = 128;
        p.dcachePorts = 4;
        v.push_back({"8-wide/256", p});
    }
    return v;
}

} // anonymous namespace

int
main()
{
    std::printf("Microarchitecture sweep: simple/complex speedup per "
                "configuration (1 GHz, cold)\n\n");
    std::printf("%-9s", "bench");
    for (const auto &c : configs())
        std::printf(" %12s", c.name);
    std::printf("\n");

    for (const auto &name : clabNames()) {
        Workload wl = makeWorkload(name);
        Rig<SimpleCpu> simple(wl.program);
        simple.cpu->run(20'000'000'000ULL);
        std::printf("%-9s", name.c_str());
        for (const auto &c : configs()) {
            MainMemory mem;
            Platform plat;
            MemController mc;
            mem.loadProgram(wl.program);
            OooCpu cpu(wl.program, mem, plat, mc, c.params);
            cpu.resetForTask();
            cpu.run(20'000'000'000ULL);
            if (plat.lastChecksum() != wl.expectedChecksum) {
                std::printf(" %12s", "BAD-CKSUM");
                continue;
            }
            std::printf(" %11.2fx",
                        static_cast<double>(simple.cpu->cycles()) /
                            static_cast<double>(cpu.cycles()));
        }
        std::printf("\n");
    }
    std::printf("\nexpected shape: speedup grows with width/window, "
                "with diminishing returns on serial kernels; the VISA "
                "guarantee is configuration-independent\n");
    return 0;
}
