/**
 * @file
 * Reproduces paper Figure 3: the same tight-deadline comparison as
 * Figure 2, but granting simple-fixed a 1.5x frequency advantage at
 * equal voltage (the pessimistic-for-VISA assumption that the simple
 * pipeline's shallower logic can be clocked faster).
 *
 * Expected shape: savings shrink relative to Figure 2 but remain
 * positive (paper: 10-38% without standby power).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/power_arm.hh"
#include "sim/parallel.hh"

using namespace visa;
using namespace visa::bench;

int
main()
{
    const int tasks = taskCount();
    std::printf("Figure 3: tight deadline, simple-fixed clocks 1.5x "
                "faster at equal voltage (%d tasks per arm)\n\n", tasks);
    std::printf("%-7s %9s %9s %8s %9s %9s %8s %7s %7s\n",
                "bench", "Psimp(W)", "Pcplx(W)", "save%", "Psimp10",
                "Pcplx10", "save10%", "fsimp", "fcplx");

    const std::vector<std::string> names = clabNames();
    std::vector<std::string> rows(names.size());
    std::vector<int> violations(names.size(), 0);
    parallelFor(names.size(), [&](std::size_t i) {
        const std::string &name = names[i];
        const ExperimentSetup &setup = cachedSetup(name);
        // Simple-fixed gets its own 1.5x DVS table and WCETs at those
        // operating points.
        DvsTable dvs15(1.5);
        WcetTable wcet15(*setup.analyzer, dvs15, &setup.dmiss);
        const double d = setup.tightDeadline;

        ArmResult sp = runSimpleFixedArm(setup, d, ClockGating::Perfect,
                                         tasks, dvs15, wcet15);
        ArmResult cp =
            runComplexArm(setup, d, ClockGating::Perfect, tasks);
        ArmResult ss = runSimpleFixedArm(setup, d,
                                         ClockGating::Standby10, tasks,
                                         dvs15, wcet15);
        ArmResult cs =
            runComplexArm(setup, d, ClockGating::Standby10, tasks);
        violations[i] = sp.deadlineMisses + cp.deadlineMisses +
                        ss.deadlineMisses + cs.deadlineMisses +
                        sp.badChecksums + cp.badChecksums;
        char line[160];
        std::snprintf(line, sizeof(line),
                      "%-7s %9.3f %9.3f %7.1f%% %9.3f %9.3f %7.1f%% "
                      "%7u %7u\n",
                      name.c_str(), sp.avgPowerW, cp.avgPowerW,
                      savingsPercent(cp.avgPowerW, sp.avgPowerW),
                      ss.avgPowerW, cs.avgPowerW,
                      savingsPercent(cs.avgPowerW, ss.avgPowerW),
                      sp.lastFSpec, cp.lastFSpec);
        rows[i] = line;
    });

    int safety_violations = 0;
    for (std::size_t i = 0; i < names.size(); ++i) {
        std::fputs(rows[i].c_str(), stdout);
        safety_violations += violations[i];
    }
    std::printf("\ndeadline misses + checksum failures across all arms:"
                " %d (must be 0)\n", safety_violations);
    std::printf("paper shape: savings shrink vs Figure 2 but stay "
                "positive (10-38%% without standby)\n");
    return safety_violations == 0 ? 0 : 1;
}
