/**
 * @file
 * Reproduces paper Table 3: per benchmark, the dynamic instruction
 * count, the number of sub-tasks, the derived tight/loose deadlines,
 * the analyzer's WCET at 1 GHz, the measured execution times of the
 * simple-fixed and complex processors at 1 GHz, and the WCET/simple
 * and simple/complex ratios.
 *
 * Expected shape (paper values): WCET/simple close to 1 for the
 * regular kernels, largest for srt (2.0 in the paper — early exit and
 * data-dependent swaps); simple/complex around 3-6x.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "sim/parallel.hh"

using namespace visa;
using namespace visa::bench;

namespace
{

/** Compute one benchmark's row; returns the formatted line. */
std::string
row(const std::string &name)
{
    const ExperimentSetup &setup = cachedSetup(name);
    const Program &prog = setup.wl.program;

    Rig<SimpleCpu> simple(prog);
    simple.cpu->run(20'000'000'000ULL);
    Rig<OooCpu> complex_rig(prog);
    complex_rig.cpu->run(20'000'000'000ULL);

    const double wcet_us =
        static_cast<double>(setup.wcet->taskCycles(1000)) / 1000.0;
    const double simple_us =
        static_cast<double>(simple.cpu->cycles()) / 1000.0;
    const double complex_us =
        static_cast<double>(complex_rig.cpu->cycles()) / 1000.0;

    char line[192];
    std::snprintf(line, sizeof(line),
                  "%-7s %10llu %5d %11.1f %11.1f %10.1f %10.1f "
                  "%10.1f %8.2f %8.2f\n",
                  name.c_str(),
                  static_cast<unsigned long long>(simple.cpu->retired()),
                  setup.wl.numSubtasks, setup.tightDeadline * 1e6,
                  setup.looseDeadline * 1e6, wcet_us, simple_us,
                  complex_us, wcet_us / simple_us,
                  simple_us / complex_us);
    return line;
}

/** Run all @p names as concurrent arms; print rows in input order. */
void
printRows(const std::vector<std::string> &names)
{
    std::vector<std::string> rows(names.size());
    parallelFor(names.size(),
                [&](std::size_t i) { rows[i] = row(names[i]); });
    for (const auto &r : rows)
        std::fputs(r.c_str(), stdout);
}

} // anonymous namespace

int
main()
{
    std::printf("Table 3: C-lab benchmarks (times at 1 GHz)\n");
    std::printf("%-7s %10s %5s %11s %11s %10s %10s %10s %8s %8s\n",
                "bench", "dyn.inst", "#sub", "tight(us)", "loose(us)",
                "WCET(us)", "simple(us)", "complex(us)", "W/simp",
                "simp/cplx");

    printRows(clabNames());
    std::printf("\npaper shape: WCET/simple in [1.0, 1.4] except srt "
                "~2.0; simple/complex in [3.1, 5.8]\n");
    std::printf("\nextended suite (not in the paper's Table 3):\n");
    printRows(extendedNames());
    return 0;
}
