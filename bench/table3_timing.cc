/**
 * @file
 * Reproduces paper Table 3: per benchmark, the dynamic instruction
 * count, the number of sub-tasks, the derived tight/loose deadlines,
 * the analyzer's WCET at 1 GHz, the measured execution times of the
 * simple-fixed and complex processors at 1 GHz, and the WCET/simple
 * and simple/complex ratios.
 *
 * Expected shape (paper values): WCET/simple close to 1 for the
 * regular kernels, largest for srt (2.0 in the paper — early exit and
 * data-dependent swaps); simple/complex around 3-6x.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace visa;
using namespace visa::bench;

int
main()
{
    std::printf("Table 3: C-lab benchmarks (times at 1 GHz)\n");
    std::printf("%-7s %10s %5s %11s %11s %10s %10s %10s %8s %8s\n",
                "bench", "dyn.inst", "#sub", "tight(us)", "loose(us)",
                "WCET(us)", "simple(us)", "complex(us)", "W/simp",
                "simp/cplx");

    auto row = [&](const std::string &name) {
        ExperimentSetup setup = makeSetup(name);
        const Program &prog = setup.wl.program;

        Rig<SimpleCpu> simple(prog);
        simple.cpu->run(20'000'000'000ULL);
        Rig<OooCpu> complex_rig(prog);
        complex_rig.cpu->run(20'000'000'000ULL);

        const double wcet_us =
            static_cast<double>(setup.wcet->taskCycles(1000)) / 1000.0;
        const double simple_us =
            static_cast<double>(simple.cpu->cycles()) / 1000.0;
        const double complex_us =
            static_cast<double>(complex_rig.cpu->cycles()) / 1000.0;

        std::printf("%-7s %10llu %5d %11.1f %11.1f %10.1f %10.1f "
                    "%10.1f %8.2f %8.2f\n",
                    name.c_str(),
                    static_cast<unsigned long long>(
                        simple.cpu->retired()),
                    setup.wl.numSubtasks, setup.tightDeadline * 1e6,
                    setup.looseDeadline * 1e6, wcet_us, simple_us,
                    complex_us, wcet_us / simple_us,
                    simple_us / complex_us);
    };
    for (const auto &name : clabNames())
        row(name);
    std::printf("\npaper shape: WCET/simple in [1.0, 1.4] except srt "
                "~2.0; simple/complex in [3.1, 5.8]\n");
    std::printf("\nextended suite (not in the paper's Table 3):\n");
    for (const auto &name : extendedNames())
        row(name);
    return 0;
}
