/**
 * @file
 * Ablations of the run-time system's design choices (DESIGN.md):
 *
 * 1. PET selection policy (§4.3): last-N maximum vs histogram with a
 *    target misprediction rate, under a disturbed workload (20% of
 *    tasks flushed). The paper: "Targeting a non-zero misprediction
 *    rate may result in a lower speculative frequency. However, this
 *    must be weighed against running in high-power recovery mode more
 *    often." This harness quantifies exactly that trade-off.
 *
 * 2. Reconfiguration-overhead sensitivity: how the ovhd term of
 *    EQ 1-4 constrains the speculative frequency and the savings as
 *    it grows from 0.5 us to 8 us (scaled tasks; see EXPERIMENTS.md).
 */

#include <cstdio>

#include "bench/power_arm.hh"

using namespace visa;
using namespace visa::bench;

namespace
{

struct PolicyResult
{
    double powerW = 0.0;
    int checkpointMisses = 0;
    int deadlineMisses = 0;
    MHz lastFSpec = 0;
};

PolicyResult
runPolicy(const ExperimentSetup &setup, double deadline,
          const PetPolicy &policy, int tasks, int induce_every)
{
    Rig<OooCpu> rig(setup.wl.program);
    RuntimeConfig cfg = setup.runtimeConfig(deadline);
    cfg.petPolicy = policy;
    VisaComplexRuntime rt(*rig.cpu, setup.wl.program, rig.mem,
                          *setup.wcet, setup.dvs, cfg);
    rt.pets().seed(profileComplexAets(setup.wl.program,
                                      setup.wl.numSubtasks, 1.03));
    PowerMeter meter(*rig.cpu, complexEnergyModel(), setup.dvs,
                     ClockGating::Perfect);
    rt.attachMeter(&meter);
    PolicyResult res;
    for (int t = 0; t < tasks; ++t) {
        bool induce = induce_every > 0 &&
                      (t % induce_every) == induce_every / 2;
        TaskStats ts = rt.runTask(induce);
        res.lastFSpec = ts.fSpec;
    }
    res.powerW = meter.averagePowerWatts();
    res.checkpointMisses = rt.stats().checkpointMisses;
    res.deadlineMisses = rt.stats().deadlineMisses;
    return res;
}

} // anonymous namespace

int
main()
{
    const int tasks = taskCount();

    std::printf("Ablation 1: PET policy under disturbance (20%% of "
                "tasks flushed), benchmark mm, %d tasks\n\n", tasks);
    std::printf("%-22s %9s %7s %10s %9s\n", "policy", "power(W)",
                "f_spec", "ckpt-miss", "dl-miss");
    ExperimentSetup setup = makeSetup("mm");
    const double d = 1.02 * setup.minDeadline;

    struct NamedPolicy
    {
        const char *name;
        PetPolicy policy;
    } policies[] = {
        {"last-10 max", {PetPolicy::LastN, 10, 0.0, 64}},
        {"histogram p=0", {PetPolicy::Histogram, 10, 0.0, 64}},
        {"histogram p=0.15", {PetPolicy::Histogram, 10, 0.15, 64}},
        {"histogram p=0.25", {PetPolicy::Histogram, 10, 0.25, 64}},
    };
    int dl_misses = 0;
    for (const auto &np : policies) {
        PolicyResult r = runPolicy(setup, d, np.policy, tasks, 5);
        std::printf("%-22s %9.3f %7u %10d %9d\n", np.name, r.powerW,
                    r.lastFSpec, r.checkpointMisses, r.deadlineMisses);
        dl_misses += r.deadlineMisses;
    }
    std::printf("expected shape: higher target miss rates trade more "
                "recovery episodes for a lower f_spec; deadlines always"
                " met\n\n");

    std::printf("Ablation 2: switch-overhead sensitivity, benchmark "
                "adpcm, tight deadline, %d tasks\n\n", tasks);
    std::printf("%10s %9s %9s %8s\n", "ovhd(us)", "Psimp(W)",
                "Pcplx(W)", "save%");
    ExperimentSetup base = makeSetup("adpcm");
    for (double ovhd_us : {0.5, 2.0, 4.0, 8.0}) {
        // Rebuild arms with the modified overhead.
        auto cfg_of = [&](double dl) {
            RuntimeConfig cfg = base.runtimeConfig(dl);
            cfg.ovhdSeconds = ovhd_us * 1e-6;
            return cfg;
        };
        double dl = base.tightDeadline + (ovhd_us - 2.0) * 1e-6;

        Rig<OooCpu> crig(base.wl.program);
        VisaComplexRuntime crt(*crig.cpu, base.wl.program, crig.mem,
                               *base.wcet, base.dvs, cfg_of(dl));
        crt.pets().seed(profileComplexAets(base.wl.program,
                                           base.wl.numSubtasks, 1.03));
        PowerMeter cmeter(*crig.cpu, complexEnergyModel(), base.dvs,
                          ClockGating::Perfect);
        crt.attachMeter(&cmeter);

        Rig<SimpleCpu> srig(base.wl.program);
        SimpleFixedRuntime srt(*srig.cpu, base.wl.program, srig.mem,
                               *base.wcet, base.dvs, cfg_of(dl));
        PowerMeter smeter(*srig.cpu, simpleFixedEnergyModel(),
                          base.dvs, ClockGating::Perfect);
        srt.attachMeter(&smeter);

        for (int t = 0; t < tasks; ++t) {
            crt.runTask();
            srt.runTask();
        }
        dl_misses +=
            crt.stats().deadlineMisses + srt.stats().deadlineMisses;
        std::printf("%10.1f %9.3f %9.3f %7.1f%%\n", ovhd_us,
                    smeter.averagePowerWatts(),
                    cmeter.averagePowerWatts(),
                    savingsPercent(cmeter.averagePowerWatts(),
                                   smeter.averagePowerWatts()));
    }
    std::printf("expected shape: larger switch overheads erode the "
                "savings (less of the slack is usable)\n");
    std::printf("\ndeadline misses across all ablation arms: %d "
                "(must be 0)\n", dl_misses);
    return dl_misses == 0 ? 0 : 1;
}
