/**
 * @file
 * Machine-readable performance report: re-runs the headline
 * microbenchmarks with plain std::chrono timing and emits JSON
 * (benchmark -> ns/op, items/s), so each PR can record the simulator's
 * throughput trajectory (BENCH_PR1.json and successors) without
 * parsing google-benchmark's console output.
 *
 * Usage: bench-report [-o FILE] [--reps N]
 *
 * Each benchmark runs N times (default 5) and the report keeps the
 * fastest repetition: on a shared machine the minimum is the best
 * estimator of the code's true cost.
 */

#include <chrono>
#include <cstdio>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.hh"

using namespace visa;
using namespace visa::bench;

namespace
{

struct Result
{
    std::string name;
    double nsPerOp = 0.0;
    double itemsPerSecond = 0.0;
};

/**
 * Run @p body @p reps times; it returns the number of items it
 * processed. Records the fastest repetition under @p name.
 */
Result
measure(const std::string &name, int reps,
        const std::function<std::uint64_t()> &body)
{
    using clock = std::chrono::steady_clock;
    double best_ns = 0.0;
    std::uint64_t best_items = 1;
    for (int r = 0; r < reps; ++r) {
        const auto t0 = clock::now();
        const std::uint64_t items = body();
        const auto t1 = clock::now();
        const double ns = static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count());
        if (r == 0 || ns < best_ns) {
            best_ns = ns;
            best_items = items ? items : 1;
        }
    }
    Result res;
    res.name = name;
    res.nsPerOp = best_ns / static_cast<double>(best_items);
    res.itemsPerSecond = 1e9 * static_cast<double>(best_items) / best_ns;
    fprintf(stderr, "%-24s %12.2f ns/op %14.0f items/s\n", name.c_str(),
            res.nsPerOp, res.itemsPerSecond);
    return res;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const char *out_path = nullptr;
    int reps = 5;
    for (int i = 1; i < argc; ++i) {
        if (!strcmp(argv[i], "-o") && i + 1 < argc) {
            out_path = argv[++i];
        } else if (!strcmp(argv[i], "--reps") && i + 1 < argc) {
            reps = atoi(argv[++i]);
        } else {
            fprintf(stderr, "usage: %s [-o FILE] [--reps N]\n", argv[0]);
            return 2;
        }
    }
    if (reps < 1)
        reps = 1;

    const Workload wl = makeWorkload("mm");

    std::vector<Result> results;

    results.push_back(measure("MemoryRead", reps, [] {
        MainMemory mem;
        for (Addr a = 0; a < 64 * 1024; a += 4)
            mem.writeWord(a, a);
        std::uint64_t sum = 0;
        const int passes = 2000;
        for (int p = 0; p < passes; ++p)
            for (Addr a = 0; a < 64 * 1024; a += 4)
                sum += mem.read(a, 4);
        // The checksum keeps the reads observable.
        if (sum == 1)
            fprintf(stderr, "unreachable\n");
        return static_cast<std::uint64_t>(passes) * (64 * 1024 / 4);
    }));

    results.push_back(measure("MemoryWrite", reps, [] {
        MainMemory mem;
        const int passes = 2000;
        for (int p = 0; p < passes; ++p)
            for (Addr a = 0; a < 64 * 1024; a += 4)
                mem.write(a, a, 4);
        return static_cast<std::uint64_t>(passes) * (64 * 1024 / 4);
    }));

    results.push_back(measure("MemoryBulkCopy", reps, [] {
        MainMemory mem;
        std::vector<std::uint8_t> buf(16 * 1024, 0xA5);
        const int passes = 20000;
        for (int p = 0; p < passes; ++p) {
            mem.writeBytes(100, buf.data(), buf.size());
            mem.readBytes(100, buf.data(), buf.size());
        }
        // items = bytes moved
        return static_cast<std::uint64_t>(passes) * 2 * buf.size();
    }));

    results.push_back(measure("ExecCoreStep", reps, [&wl] {
        MainMemory mem;
        mem.loadProgram(wl.program);
        Platform platform;
        ExecCore core(wl.program, mem, platform);
        std::uint64_t insts = 0;
        for (int p = 0; p < 20; ++p) {
            core.reset();
            ExecInfo info;
            do {
                info = core.step(false);
                ++insts;
            } while (!info.halted);
        }
        return insts;
    }));

    results.push_back(measure("SimpleCpuRun", reps, [&wl] {
        std::uint64_t insts = 0;
        for (int p = 0; p < 10; ++p) {
            Rig<SimpleCpu> rig(wl.program);
            rig.cpu->run(20'000'000'000ULL);
            insts += rig.cpu->retired();
        }
        return insts;
    }));

    results.push_back(measure("OooCpuRun", reps, [&wl] {
        std::uint64_t insts = 0;
        for (int p = 0; p < 3; ++p) {
            Rig<OooCpu> rig(wl.program);
            rig.cpu->run(20'000'000'000ULL);
            insts += rig.cpu->retired();
        }
        return insts;
    }));

    results.push_back(measure("OooCpuSimpleMode", reps, [&wl] {
        std::uint64_t insts = 0;
        for (int p = 0; p < 10; ++p) {
            Rig<OooCpu> rig(wl.program);
            rig.cpu->switchToSimple();
            rig.cpu->run(20'000'000'000ULL);
            insts += rig.cpu->retired();
        }
        return insts;
    }));

    FILE *out = out_path ? fopen(out_path, "w") : stdout;
    if (!out) {
        fprintf(stderr, "cannot open %s\n", out_path);
        return 1;
    }
    fprintf(out, "{\n  \"benchmarks\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const Result &r = results[i];
        fprintf(out,
                "    {\"name\": \"%s\", \"ns_per_op\": %.3f, "
                "\"items_per_second\": %.0f}%s\n",
                r.name.c_str(), r.nsPerOp, r.itemsPerSecond,
                i + 1 < results.size() ? "," : "");
    }
    fprintf(out, "  ]\n}\n");
    if (out != stdout)
        fclose(out);
    return 0;
}
