/**
 * @file
 * Machine-readable performance report: re-runs the headline
 * microbenchmarks with plain std::chrono timing and emits JSON
 * (benchmark -> ns/op, items/s), so each PR can record the simulator's
 * throughput trajectory (BENCH_PR1.json and successors) without
 * parsing google-benchmark's console output.
 *
 * Usage: bench-report [-o FILE] [--reps N]
 *
 * Each benchmark runs N times (default 5) and the report keeps the
 * fastest repetition: on a shared machine the minimum is the best
 * estimator of the code's true cost.
 *
 * The report also self-profiles the experiment-campaign phases (WCET
 * setup, the simple and VISA campaigns, a traced VISA campaign, and
 * the differential-verification harness): host wall-clock per phase
 * and simulated MIPS, under "campaign_phases". The traced arm quantifies the cost of turning the
 * tracer on; the untraced arms track the simulator's raw speed.
 *
 * chip_campaign_cN phases sweep the multi-core chip model: the clab6
 * task set under partitioned EDF on 1, 2, ... --cores cores (powers of
 * two), through the shared bus + L2. The cN curve tracks how sim-MIPS
 * scales with simulated chip width.
 */

#include <chrono>
#include <cstdio>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hh"
#include "sim/cli.hh"
#include "verify/lockstep.hh"
#include "verify/progen.hh"

using namespace visa;
using namespace visa::bench;

namespace
{

struct Result
{
    std::string name;
    double nsPerOp = 0.0;
    double itemsPerSecond = 0.0;
};

/**
 * Identify the machine and toolchain behind the numbers, so a report
 * compared against a baseline recorded elsewhere can be flagged
 * (tests/bench_gate.cmake downgrades its throughput gates to warnings
 * on a host mismatch instead of failing on apples-vs-oranges data).
 */
struct HostInfo
{
    std::string cpuModel;    ///< /proc/cpuinfo "model name" ("" off-Linux)
    unsigned cores = 0;
    std::string compiler;    ///< __VERSION__
    std::string buildType;   ///< "release" / "debug" (NDEBUG)
};

HostInfo
hostInfo()
{
    HostInfo h;
    std::ifstream cpuinfo("/proc/cpuinfo");
    std::string line;
    while (std::getline(cpuinfo, line)) {
        const auto colon = line.find(':');
        if (line.compare(0, 10, "model name") == 0 &&
            colon != std::string::npos) {
            h.cpuModel = line.substr(colon + 1);
            while (!h.cpuModel.empty() && h.cpuModel.front() == ' ')
                h.cpuModel.erase(h.cpuModel.begin());
            break;
        }
    }
    h.cores = std::thread::hardware_concurrency();
#if defined(__VERSION__)
    h.compiler = __VERSION__;
#endif
#ifdef NDEBUG
    h.buildType = "release";
#else
    h.buildType = "debug";
#endif
    return h;
}

/** Minimal JSON string escape (quotes and backslashes). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

/**
 * Run @p body @p reps times; it returns the number of items it
 * processed. Records the fastest repetition under @p name.
 */
Result
measure(const std::string &name, int reps,
        const std::function<std::uint64_t()> &body)
{
    using clock = std::chrono::steady_clock;
    double best_ns = 0.0;
    std::uint64_t best_items = 1;
    for (int r = 0; r < reps; ++r) {
        const auto t0 = clock::now();
        const std::uint64_t items = body();
        const auto t1 = clock::now();
        const double ns = static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count());
        if (r == 0 || ns < best_ns) {
            best_ns = ns;
            best_items = items ? items : 1;
        }
    }
    Result res;
    res.name = name;
    res.nsPerOp = best_ns / static_cast<double>(best_items);
    res.itemsPerSecond = 1e9 * static_cast<double>(best_items) / best_ns;
    fprintf(stderr, "%-24s %12.2f ns/op %14.0f items/s\n", name.c_str(),
            res.nsPerOp, res.itemsPerSecond);
    return res;
}

struct Phase
{
    std::string name;
    double wallSeconds = 0.0;
    std::uint64_t instructions = 0;
    double simMips = 0.0;    ///< simulated Minsts / host second (0 = n/a)
    double speedup = 0.0;    ///< serial / threaded wall ratio (0 = n/a)
};

/**
 * Time one campaign phase; @p body returns instructions simulated.
 * Like measure(), the fastest of @p reps runs is kept: the phases are
 * tens of milliseconds each, so a single sample is dominated by host
 * scheduler noise. The bodies are deterministic, so every rep simulates
 * the same instruction count.
 */
Phase
profilePhase(const std::string &name, int reps,
             const std::function<std::uint64_t()> &body)
{
    using clock = std::chrono::steady_clock;
    double best = 0.0;
    std::uint64_t insts = 0;
    for (int r = 0; r < reps; ++r) {
        const auto t0 = clock::now();
        insts = body();
        const auto t1 = clock::now();
        const double wall =
            std::chrono::duration_cast<std::chrono::duration<double>>(
                t1 - t0)
                .count();
        if (r == 0 || wall < best)
            best = wall;
    }
    Phase p;
    p.name = name;
    p.wallSeconds = best;
    p.instructions = insts;
    if (insts && p.wallSeconds > 0.0) {
        p.simMips = static_cast<double>(insts) / 1e6 / p.wallSeconds;
        fprintf(stderr, "%-24s %10.3f s %14llu insts %10.2f MIPS\n",
                name.c_str(), p.wallSeconds,
                static_cast<unsigned long long>(p.instructions),
                p.simMips);
    } else {
        // Phases that simulate nothing (pure analysis, e.g. WCET
        // setup) have no meaningful MIPS figure; print wall time only.
        fprintf(stderr, "%-24s %10.3f s\n", name.c_str(), p.wallSeconds);
    }
    return p;
}

/** One runtime campaign: @p tasks instances, summed retired count. */
template <typename CpuT, typename RuntimeT>
std::uint64_t
runCampaign(const ExperimentSetup &setup, int tasks)
{
    const RuntimeConfig cfg = setup.runtimeConfig(setup.tightDeadline);
    Rig<CpuT> rig(setup.wl.program);
    RuntimeT rt(*rig.cpu, setup.wl.program, rig.mem, *setup.wcet,
                setup.dvs, cfg);
    std::uint64_t insts = 0;
    for (int t = 0; t < tasks; ++t)
        insts += rt.runTask().retired;
    return insts;
}

std::vector<Phase>
profileCampaignPhases(int reps, int maxCores)
{
    constexpr int tasks = 30;
    std::vector<Phase> phases;

    // cachedSetup's first call pays the WCET analysis, the calibration
    // runs, and the deadline bisection; later phases reuse the cache,
    // isolating pure simulation speed. One rep only: repeating it
    // would time cache hits, not the one-time analysis cost.
    phases.push_back(profilePhase("setup_wcet_analysis", 1, [] {
        (void)cachedSetup("cnt");
        return std::uint64_t{0};
    }));

    const ExperimentSetup &setup = cachedSetup("cnt");
    phases.push_back(profilePhase("simple_campaign", reps, [&] {
        return runCampaign<SimpleCpu, SimpleFixedRuntime>(setup, tasks);
    }));
    phases.push_back(profilePhase("visa_campaign", reps, [&] {
        return runCampaign<OooCpu, VisaComplexRuntime>(setup, tasks);
    }));
    phases.push_back(profilePhase("visa_campaign_traced", reps, [&] {
        Tracer tracer(1 << 20);
        ScopedTracer scope(tracer);
        return runCampaign<OooCpu, VisaComplexRuntime>(setup, tasks);
    }));
    // Differential-verification throughput: generate + lockstep-check
    // random programs serially (src/verify); tracks how many programs
    // a fuzzing campaign gets through per host second.
    phases.push_back(profilePhase("verify_throughput", reps, [] {
        std::uint64_t insts = 0;
        const verify::GenParams gen;
        for (std::uint64_t seed = 1; seed <= 200; ++seed) {
            const verify::GeneratedProgram g = verify::generate(seed, gen);
            insts += verify::runLockstep(g.program).instructions;
        }
        return insts;
    }));
    // Preemptive multi-task throughput: the trio task set under EDF at
    // 85% utilization (core/scheduler.hh). Task-set analysis happens
    // outside the timed body so the phase isolates scheduler +
    // simulation speed, not WCET setup.
    const std::vector<SchedTaskDef> trio =
        makeTaskSetDefs(parseTaskSet("trio"), 0.85);
    phases.push_back(profilePhase("taskset_throughput", reps, [&] {
        MultiTaskScheduler sched;
        for (const SchedTaskDef &d : trio)
            sched.addTask(d);
        sched.run(10);
        std::uint64_t insts = 0;
        for (int t = 0; t < sched.numTasks(); ++t)
            insts += sched.taskStats(t).retired;
        return insts;
    }));
    // Multi-core chip throughput: the six-task clab6 set under
    // partitioned EDF on 1, 2, ... maxCores cores (powers of two),
    // every core in front of the shared bus + L2. Same job count at
    // every width, so the cN curve is the cost of simulating chip
    // width, not of extra work.
    const std::vector<SchedTaskDef> clab6 =
        makeTaskSetDefs(parseTaskSet("clab6"), 0.85);
    int wide = 1;
    for (int m = 1; m <= maxCores; m *= 2) {
        wide = m;
        phases.push_back(profilePhase(
            "chip_campaign_c" + std::to_string(m), reps, [&, m] {
                SchedulerConfig cfg;
                cfg.cores = m;
                cfg.placement = PlacementPolicy::Partitioned;
                MultiTaskScheduler sched(cfg);
                for (const SchedTaskDef &d : clab6)
                    sched.addTask(d);
                sched.run(4);
                std::uint64_t insts = 0;
                for (int t = 0; t < sched.numTasks(); ++t)
                    insts += sched.taskStats(t).retired;
                return insts;
            }));
    }
    // Parallel chip execution: the widest chip campaign pinned to one
    // worker thread, then to one thread per core. The engine is
    // bit-identical in both configurations (the epoch barriers order
    // all cross-core effects), so the wall-clock ratio is pure host
    // parallelism — the speedup figure bench_gate tracks.
    if (wide > 1) {
        const auto campaign = [&] {
            SchedulerConfig cfg;
            cfg.cores = wide;
            cfg.placement = PlacementPolicy::Partitioned;
            MultiTaskScheduler sched(cfg);
            for (const SchedTaskDef &d : clab6)
                sched.addTask(d);
            sched.run(4);
            std::uint64_t insts = 0;
            for (int t = 0; t < sched.numTasks(); ++t)
                insts += sched.taskStats(t).retired;
            return insts;
        };
        const char *prevEnv = std::getenv("VISA_THREADS");
        const std::string prev = prevEnv ? prevEnv : "";
        setenv("VISA_THREADS", "1", 1);
        const Phase serial = profilePhase(
            "chip_campaign_c" + std::to_string(wide) + "_t1", reps,
            campaign);
        setenv("VISA_THREADS", std::to_string(wide).c_str(), 1);
        const Phase threaded = profilePhase(
            "chip_campaign_c" + std::to_string(wide) + "_t" +
                std::to_string(wide),
            reps, campaign);
        if (prevEnv)
            setenv("VISA_THREADS", prev.c_str(), 1);
        else
            unsetenv("VISA_THREADS");
        Phase sp;
        sp.name = "chip_parallel_speedup";
        sp.wallSeconds = threaded.wallSeconds;
        if (threaded.wallSeconds > 0.0)
            sp.speedup = serial.wallSeconds / threaded.wallSeconds;
        fprintf(stderr, "%-24s %10.2fx (%0.3f s -> %0.3f s)\n",
                sp.name.c_str(), sp.speedup, serial.wallSeconds,
                threaded.wallSeconds);
        phases.push_back(serial);
        phases.push_back(threaded);
        phases.push_back(sp);
    }
    return phases;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CliParser cli("bench-report");
    std::string &out_flag =
        cli.flag("-o", "FILE", "write the JSON report here (default "
                               "stdout)");
    std::string &reps_flag =
        cli.flag("--reps", "N", "repetitions per benchmark (fastest "
                                "kept)", "5");
    std::string &threads_flag = addThreadsFlag(cli);
    std::string &cores_flag = addCoresFlag(cli);
    int max_cores = 4;    // widest chip in the chip_campaign sweep
    try {
        cli.parse(argc, argv);
        applyThreadsFlag(threads_flag);
        if (!cores_flag.empty())
            max_cores = parseCoresFlag(cores_flag);
    } catch (const FatalError &e) {
        fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
    const char *out_path = out_flag.empty() ? nullptr : out_flag.c_str();
    int reps = atoi(reps_flag.c_str());
    if (reps < 1)
        reps = 1;

    const Workload wl = makeWorkload("mm");

    std::vector<Result> results;

    results.push_back(measure("MemoryRead", reps, [] {
        MainMemory mem;
        for (Addr a = 0; a < 64 * 1024; a += 4)
            mem.writeWord(a, a);
        std::uint64_t sum = 0;
        const int passes = 2000;
        for (int p = 0; p < passes; ++p)
            for (Addr a = 0; a < 64 * 1024; a += 4)
                sum += mem.read(a, 4);
        // The checksum keeps the reads observable.
        if (sum == 1)
            fprintf(stderr, "unreachable\n");
        return static_cast<std::uint64_t>(passes) * (64 * 1024 / 4);
    }));

    results.push_back(measure("MemoryWrite", reps, [] {
        MainMemory mem;
        const int passes = 2000;
        for (int p = 0; p < passes; ++p)
            for (Addr a = 0; a < 64 * 1024; a += 4)
                mem.write(a, a, 4);
        return static_cast<std::uint64_t>(passes) * (64 * 1024 / 4);
    }));

    results.push_back(measure("MemoryBulkCopy", reps, [] {
        MainMemory mem;
        std::vector<std::uint8_t> buf(16 * 1024, 0xA5);
        const int passes = 20000;
        for (int p = 0; p < passes; ++p) {
            mem.writeBytes(100, buf.data(), buf.size());
            mem.readBytes(100, buf.data(), buf.size());
        }
        // items = bytes moved
        return static_cast<std::uint64_t>(passes) * 2 * buf.size();
    }));

    results.push_back(measure("ExecCoreStep", reps, [&wl] {
        MainMemory mem;
        mem.loadProgram(wl.program);
        Platform platform;
        ExecCore core(wl.program, mem, platform);
        std::uint64_t insts = 0;
        for (int p = 0; p < 20; ++p) {
            core.reset();
            insts += core.runFunctional(20'000'000'000ULL).insts;
        }
        return insts;
    }));

    results.push_back(measure("SimpleCpuRun", reps, [&wl] {
        std::uint64_t insts = 0;
        for (int p = 0; p < 10; ++p) {
            Rig<SimpleCpu> rig(wl.program);
            rig.cpu->run(20'000'000'000ULL);
            insts += rig.cpu->retired();
        }
        return insts;
    }));

    results.push_back(measure("OooCpuRun", reps, [&wl] {
        std::uint64_t insts = 0;
        for (int p = 0; p < 3; ++p) {
            Rig<OooCpu> rig(wl.program);
            rig.cpu->run(20'000'000'000ULL);
            insts += rig.cpu->retired();
        }
        return insts;
    }));

    results.push_back(measure("OooCpuSimpleMode", reps, [&wl] {
        std::uint64_t insts = 0;
        for (int p = 0; p < 10; ++p) {
            Rig<OooCpu> rig(wl.program);
            rig.cpu->switchToSimple();
            rig.cpu->run(20'000'000'000ULL);
            insts += rig.cpu->retired();
        }
        return insts;
    }));

    // items = generated programs, so items/s is the fuzzer's serial
    // generate + lockstep-check rate.
    results.push_back(measure("VerifyLockstepProgram", reps, [] {
        const verify::GenParams gen;
        const std::uint64_t programs = 100;
        for (std::uint64_t s = 1; s <= programs; ++s)
            (void)verify::runLockstep(verify::generate(s, gen).program);
        return programs;
    }));

    const std::vector<Phase> phases =
        profileCampaignPhases(reps, max_cores);

    FILE *out = out_path ? fopen(out_path, "w") : stdout;
    if (!out) {
        fprintf(stderr, "cannot open %s\n", out_path);
        return 1;
    }
    const HostInfo host = hostInfo();
    fprintf(out,
            "{\n  \"host\": {\"cpu_model\": \"%s\", \"cores\": %u, "
            "\"compiler\": \"%s\", \"build_type\": \"%s\"},\n",
            jsonEscape(host.cpuModel).c_str(), host.cores,
            jsonEscape(host.compiler).c_str(), host.buildType.c_str());
    fprintf(out, "  \"benchmarks\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const Result &r = results[i];
        fprintf(out,
                "    {\"name\": \"%s\", \"ns_per_op\": %.3f, "
                "\"items_per_second\": %.0f}%s\n",
                r.name.c_str(), r.nsPerOp, r.itemsPerSecond,
                i + 1 < results.size() ? "," : "");
    }
    fprintf(out, "  ],\n  \"campaign_phases\": [\n");
    for (std::size_t i = 0; i < phases.size(); ++i) {
        const Phase &p = phases[i];
        // Phases that simulate no instructions report wall time only:
        // a "sim_mips": 0.00 entry reads as a measured-but-terrible
        // rate, not as not-applicable.
        if (p.speedup > 0.0)
            fprintf(out,
                    "    {\"name\": \"%s\", \"wall_s\": %.4f, "
                    "\"speedup\": %.3f}%s\n",
                    p.name.c_str(), p.wallSeconds, p.speedup,
                    i + 1 < phases.size() ? "," : "");
        else if (p.instructions)
            fprintf(out,
                    "    {\"name\": \"%s\", \"wall_s\": %.4f, "
                    "\"instructions\": %llu, \"sim_mips\": %.2f}%s\n",
                    p.name.c_str(), p.wallSeconds,
                    static_cast<unsigned long long>(p.instructions),
                    p.simMips, i + 1 < phases.size() ? "," : "");
        else
            fprintf(out, "    {\"name\": \"%s\", \"wall_s\": %.4f}%s\n",
                    p.name.c_str(), p.wallSeconds,
                    i + 1 < phases.size() ? "," : "");
    }
    fprintf(out, "  ]\n}\n");
    if (out != stdout)
        fclose(out);
    return 0;
}
