/**
 * @file
 * visa-fuzz: differential fuzzing driver for the verification harness
 * (src/verify). Generates seeded random VPISA programs, runs each one
 * on the in-order reference pipeline and the out-of-order candidate in
 * lockstep, and periodically cross-checks the paper's timing
 * invariants with the oracle. Batches are scanned in parallel
 * (sim/parallel.hh); results are deterministic for a given
 * {seed, count, profile} triple regardless of thread count.
 *
 * On the first failure the driver prints the divergence report,
 * optionally shrinks the program with the instruction-deletion
 * minimizer (--minimize), and optionally writes a repro file in the
 * tests/corpus format (--out DIR). --replay FILE re-runs a saved repro
 * and exits non-zero if it still fails — the regression-replay tests
 * are built on that mode.
 *
 * --inject CLASS|matrix switches the harness to the fault-injection
 * campaign (verify/inject.hh): every program gets one seeded transient
 * fault from the chosen class (or the whole matrix, round-robin),
 * runs under the restart-recovery runtime, and is classified as
 * detected-by-watchdog / detected-by-lockstep / silent. The campaign
 * prints a per-class coverage table with detection-latency and
 * deadline-cost statistics; silent-data-corruption escapes are written
 * as corpus repros with --out. --trace-jsonl additionally records one
 * demo run's full fault/recovery event trace for the schema tools.
 * With --cores 2 (or more) the campaign additionally runs the
 * FlexStep-style paired-core vote on every fired fault — a spare core
 * re-executes the sub-task in simple mode and the boundary states are
 * compared — and the table gains a paired detected/checked column, so
 * the spare-core detector's coverage can be read off against the
 * watchdog and the lockstep checker.
 *
 * (The historical --inject-load-ext-bug alias was removed; use
 * --inject load-ext, which is the same persistent subword-load
 * sign-extension fault through the fault matrix.)
 *
 * --coverage switches the harness to coverage-guided exploration:
 * every program runs once on the in-order pipeline under a block
 * profiler and its structural block/edge signatures (sim/prof/
 * coverage.hh) are folded into a cumulative AFL-style bitmap. Programs
 * that light up new bits are "interesting" and are kept as corpus
 * seeds when --out is given. The per-batch merge is sequential in scan
 * order, so the cumulative coverage curve is deterministic for a given
 * {seed, count, profile} regardless of VISA_THREADS.
 *
 * --cross-check-timing switches the harness: instead of the
 * architectural lockstep, every program runs on the event-driven
 * OooCpu and the frozen per-cycle reference stepper (verify/
 * timing_cross.hh) and the complete cycle-stamped event streams are
 * compared. A deterministic quarter of the corpus additionally drains
 * into simple mode mid-run and back, covering the reconfiguration
 * paths. This is the continuous proof that the event-driven timing
 * core is cycle-for-cycle identical to the historical model.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cpu/ooo_cpu.hh"
#include "cpu/simple_cpu.hh"
#include "isa/assembler.hh"
#include "sim/cli.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"
#include "sim/prof/coverage.hh"
#include "sim/prof/prof.hh"
#include "verify/corpus.hh"
#include "verify/inject.hh"
#include "verify/lockstep.hh"
#include "verify/minimize.hh"
#include "verify/oracle.hh"
#include "verify/progen.hh"
#include "verify/timing_cross.hh"

using namespace visa;
using namespace visa::verify;

namespace
{

struct Options
{
    std::uint64_t seed = 1;
    std::uint64_t count = 1000;
    GenProfile profile = GenProfile::Mixed;
    int statements = 48;
    std::uint64_t maxInstructions = 2'000'000;
    /** Run the timing oracle on every Kth program (0 = never). */
    std::uint64_t oracleEvery = 512;
    bool minimize = false;
    bool crossCheckTiming = false;
    bool coverage = false;
    std::string outDir;
    std::string replayPath;
    /** Fault-injection campaign: a class name or "matrix" (empty =
     *  campaign off). */
    std::string injectArg;
    /** Write the demo run's fault/recovery trace here (campaign only). */
    std::string traceJsonlPath;
    /** Chip width; >= 2 arms the paired-core vote in --inject runs. */
    int cores = 1;
};

/** One recorded failure, keyed by scan index for determinism. */
struct Failure
{
    std::uint64_t index = 0;
    std::uint64_t seed = 0;
    std::string kind;    ///< "divergence", "timeout", or "oracle"
    std::string report;
    std::string source;
};

LockstepOptions
lockstepOptions(const Options &opts)
{
    LockstepOptions lo;
    lo.maxInstructions = opts.maxInstructions;
    return lo;
}

TimingCrossOptions
timingCrossOptions(std::uint64_t seed)
{
    TimingCrossOptions xo;
    // A deterministic quarter of the corpus also exercises the
    // reconfiguration drains: switch to simple mode at a seed-derived
    // cycle (so the drain catches the window in many states), dwell,
    // and switch back.
    if (seed % 4 == 0)
        xo.modeSwitchAtCycle = 1024 + (seed % 7) * 512;
    return xo;
}

int
replay(const Options &opts)
{
    const ReproCase rc = loadRepro(opts.replayPath);
    const Program prog = assemble(rc.source);
    const LockstepResult r = runLockstep(prog, lockstepOptions(opts));
    if (r.equivalent) {
        std::printf("replay %s: equivalent (%llu instructions)\n",
                    opts.replayPath.c_str(),
                    static_cast<unsigned long long>(r.instructions));
        return 0;
    }
    std::printf("replay %s: %s\n%s\n", opts.replayPath.c_str(),
                r.diverged ? "DIVERGED" : "TIMED OUT",
                r.report.c_str());
    return 1;
}

/** Shrink a failing source; @return minimized source (or the input). */
std::string
minimizeFailure(const Options &opts, const std::string &source)
{
    LockstepOptions lo = lockstepOptions(opts);
    // Candidates that loop forever after a deleted decrement must be
    // rejected quickly, not after the full scan cap.
    lo.maxInstructions =
        std::min<std::uint64_t>(opts.maxInstructions, 200'000);
    lo.traceTail = 0;
    TimingCrossOptions xo;
    xo.maxCycles = 1'000'000;
    const MinimizeResult m =
        minimizeSource(source, [&](const Program &p) {
            // Deleting a jump or halt can send a candidate's PC off the
            // end of the text segment (a PanicError) — reject it, the
            // same way a timeout is rejected.
            try {
                return opts.crossCheckTiming
                           ? runTimingCross(p, xo).diverged
                           : runLockstep(p, lo).diverged;
            } catch (const std::exception &) {
                return false;
            }
        });
    std::fprintf(stderr,
                 "minimized to %zu instructions (%d candidates)\n",
                 m.instructions, m.candidates);
    return m.source;
}

/**
 * Coverage-guided scan: run every generated program under a block
 * profiler, fold its structural block/edge signatures into one
 * cumulative bitmap, and keep the programs that discover new bits as
 * corpus seeds. Profiling runs in parallel; the bitmap merge is
 * sequential in scan-index order so the coverage curve (and the kept
 * seed set) is identical for any VISA_THREADS.
 */
int
coverageScan(const Options &opts)
{
    GenParams gen;
    gen.profile = opts.profile;
    gen.statements = opts.statements;

    prof::CoverageMap map;
    std::uint64_t interesting = 0, kept = 0, lastPop = 0;
    const auto t0 = std::chrono::steady_clock::now();
    constexpr std::uint64_t batch = 256;
    for (std::uint64_t base = 0; base < opts.count; base += batch) {
        const std::size_t n = static_cast<std::size_t>(
            std::min(batch, opts.count - base));
        std::vector<std::vector<std::uint64_t>> feats(n);
        std::vector<std::string> sources(n);
        parallelFor(n, [&](std::size_t i) {
            const std::uint64_t seed = opts.seed + base + i;
            const GeneratedProgram g = generate(seed, gen);
            MainMemory mem;
            mem.loadProgram(g.program);
            Platform platform;
            MemController memctrl;
            SimpleCpu cpu(g.program, mem, platform, memctrl);
            cpu.resetForTask();
            prof::BlockProfiler profiler(g.program);
            {
                prof::ScopedProfiler scope(profiler);
                // Cycle budget, so runaway loops stop; a truncated run
                // still contributes the coverage it reached.
                cpu.run(opts.maxInstructions);
            }
            feats[i] = prof::coverageFeatures(profiler, g.program);
            sources[i] = g.source;
        });
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t fresh = map.add(feats[i]);
            if (!fresh)
                continue;
            ++interesting;
            if (!opts.outDir.empty()) {
                const std::uint64_t seed = opts.seed + base + i;
                ReproCase rc;
                rc.seed = seed;
                rc.profile = profileName(opts.profile);
                rc.note = "coverage seed (+" + std::to_string(fresh) +
                          " features)";
                rc.source = sources[i];
                const std::string path = opts.outDir + "/cov_seed_" +
                                         std::to_string(seed) + ".s";
                if (saveRepro(path, rc))
                    ++kept;
                else
                    std::fprintf(stderr, "cannot write %s\n",
                                 path.c_str());
            }
        }
        std::printf("scanned %8llu programs: coverage %8llu bits "
                    "(+%llu), %llu interesting\n",
                    static_cast<unsigned long long>(base + n),
                    static_cast<unsigned long long>(map.population()),
                    static_cast<unsigned long long>(map.population() -
                                                    lastPop),
                    static_cast<unsigned long long>(interesting));
        lastPop = map.population();
    }

    const auto t1 = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration_cast<std::chrono::duration<double>>(t1 -
                                                                  t0)
            .count();
    std::printf("%llu programs, %llu coverage bits (%.2f%% of map), "
                "%llu interesting, %.2f s (%.0f programs/s)\n",
                static_cast<unsigned long long>(opts.count),
                static_cast<unsigned long long>(map.population()),
                100.0 * static_cast<double>(map.population()) /
                    static_cast<double>(map.sizeBits()),
                static_cast<unsigned long long>(interesting), secs,
                secs > 0 ? static_cast<double>(opts.count) / secs : 0);
    if (kept)
        std::printf("%llu coverage seeds written to %s\n",
                    static_cast<unsigned long long>(kept),
                    opts.outDir.c_str());
    return 0;
}

/**
 * The fault-injection campaign: N programs x the chosen fault classes
 * (round-robin by scan index), each injected, run under the
 * restart-recovery runtime, and classified. Deterministic for a given
 * {seed, count, classes} regardless of VISA_THREADS.
 */
int
injectCampaign(const Options &opts)
{
    std::vector<FaultClass> classes;
    if (opts.injectArg == "matrix") {
        for (int c = 0; c < numFaultClasses; ++c)
            classes.push_back(static_cast<FaultClass>(c));
    } else {
        FaultClass c;
        if (!parseFaultClass(opts.injectArg.c_str(), c))
            fatal("unknown fault class '%s' (use 'matrix' or one of "
                  "the class names)",
                  opts.injectArg.c_str());
        classes.push_back(c);
    }

    InjectRunOptions io;
    io.profile = opts.profile;
    io.statements = opts.statements;
    io.maxInstructions = opts.maxInstructions;
    // A second core spares the paired-core detector: every fired fault
    // is also voted at the sub-task boundary by a simple-mode twin.
    io.pairedCheck = opts.cores >= 2;

    if (!opts.traceJsonlPath.empty()) {
        // Demo trace carrying every fault/recovery event kind. No
        // single run shows all three (a lockstep-detected fault never
        // restarts, and rare-victim classes cannot fire inside the
        // short complex window before a forced expiry), so the export
        // is two legs: a naturally detected run of the requested
        // class, plus a forced-expiry run for the restart path. Seeds
        // are probed untraced first so the file holds only the two
        // demonstrative runs.
        Tracer tracer(1 << 16);
        InjectRunOptions dio = io;
        InjectRunOptions fio = io;
        fio.forceMiss = true;
        fio.triggerFirst = true;
        const auto probe = [&](const InjectRunOptions &o, auto &&pred) {
            for (std::uint64_t s = opts.seed; s < opts.seed + 64; ++s)
                if (pred(runInjectProgram(s, classes.front(), o)))
                    return s;
            return opts.seed;
        };
        const std::uint64_t fire_seed =
            probe(dio, [](const InjectRunResult &r) {
                return r.outcome == InjectOutcome::DetectedWatchdog ||
                       r.outcome == InjectOutcome::DetectedLockstep;
            });
        const std::uint64_t restart_seed =
            probe(fio, [](const InjectRunResult &r) {
                return r.restarts > 0;
            });
        dio.trace = &tracer;
        fio.trace = &tracer;
        runInjectProgram(fire_seed, classes.front(), dio);
        runInjectProgram(restart_seed, classes.front(), fio);
        std::ofstream os(opts.traceJsonlPath);
        if (!os)
            fatal("cannot write %s", opts.traceJsonlPath.c_str());
        tracer.writeJsonl(os);
        std::printf("fault/recovery trace written to %s\n",
                    opts.traceJsonlPath.c_str());
    }

    const auto t0 = std::chrono::steady_clock::now();
    const InjectCampaignResult res = runInjectCampaign(
        opts.seed, opts.count, classes, io,
        [](std::uint64_t done, std::uint64_t total) {
            std::fprintf(stderr, "injected %llu/%llu programs\r",
                         static_cast<unsigned long long>(done),
                         static_cast<unsigned long long>(total));
        });
    std::fprintf(stderr, "\n");
    const auto t1 = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration_cast<std::chrono::duration<double>>(t1 -
                                                                  t0)
            .count();

    std::printf("%s", formatCoverageTable(res).c_str());
    std::printf("%llu injected programs, %zu silent-corruption "
                "escapes, %.2f s (%.0f programs/s)\n",
                static_cast<unsigned long long>(res.programs),
                res.escapes.size(), secs,
                secs > 0 ? static_cast<double>(res.programs) / secs : 0);

    if (!opts.outDir.empty()) {
        for (const InjectRunResult &e : res.escapes) {
            ReproCase rc;
            rc.seed = e.seed;
            rc.profile = profileName(opts.profile);
            rc.note = std::string("silent corruption escape, class ") +
                      faultClassName(e.cls) +
                      " (reproduce: visa-fuzz --inject " +
                      faultClassName(e.cls) + " --seed " +
                      std::to_string(e.seed) + " --count 1)";
            rc.source = e.source;
            const std::string path =
                opts.outDir + "/inj_" + faultClassName(e.cls) + "_" +
                std::to_string(e.seed) + ".s";
            if (saveRepro(path, rc))
                std::printf("escape repro written to %s\n",
                            path.c_str());
            else
                std::fprintf(stderr, "cannot write %s\n", path.c_str());
        }
    }
    return res.escapes.empty() ? 0 : 1;
}

int
fuzz(const Options &opts)
{
    GenParams gen;
    gen.profile = opts.profile;
    gen.statements = opts.statements;

    std::atomic<std::uint64_t> instructions{0};
    std::mutex failMutex;
    std::vector<Failure> failures;
    const auto record = [&](Failure f) {
        std::lock_guard<std::mutex> lock(failMutex);
        failures.push_back(std::move(f));
    };

    const auto t0 = std::chrono::steady_clock::now();
    constexpr std::uint64_t batch = 256;
    std::uint64_t done = 0;
    for (std::uint64_t base = 0; base < opts.count; base += batch) {
        const std::size_t n = static_cast<std::size_t>(
            std::min(batch, opts.count - base));
        parallelFor(n, [&](std::size_t i) {
            const std::uint64_t index = base + i;
            const std::uint64_t seed = opts.seed + index;
            const GeneratedProgram g = generate(seed, gen);
            if (opts.crossCheckTiming) {
                const TimingCrossResult x =
                    runTimingCross(g.program, timingCrossOptions(seed));
                instructions += x.eventsCompared;
                if (!x.equivalent)
                    record({index, seed,
                            x.diverged ? "timing-divergence"
                                       : "timing-timeout",
                            x.report, g.source});
                return;
            }
            const LockstepResult r =
                runLockstep(g.program, lockstepOptions(opts));
            instructions += r.instructions;
            if (!r.equivalent) {
                record({index, seed,
                        r.diverged ? "divergence" : "timeout",
                        r.report, g.source});
                return;
            }
            if (opts.oracleEvery && index % opts.oracleEvery == 0) {
                GenParams og = gen;
                og.instrument = true;
                og.allowCalls = false;
                const GeneratedProgram inst = generate(seed, og);
                const OracleResult o = runTimingOracle(inst);
                if (!o.ok)
                    record({index, seed, "oracle", o.report,
                            inst.source});
            }
        });
        done += n;
        if (done % 2048 == 0 || done == opts.count || !failures.empty())
            std::fprintf(stderr, "scanned %llu/%llu programs\r",
                         static_cast<unsigned long long>(done),
                         static_cast<unsigned long long>(opts.count));
        if (!failures.empty())
            break;    // finish the batch, then stop deterministically
    }
    std::fprintf(stderr, "\n");

    const auto t1 = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration_cast<std::chrono::duration<double>>(t1 -
                                                                  t0)
            .count();
    std::printf("%llu programs, %llu %s, %.2f s "
                "(%.0f programs/s)\n",
                static_cast<unsigned long long>(done),
                static_cast<unsigned long long>(instructions.load()),
                opts.crossCheckTiming ? "timing events compared"
                                      : "instructions",
                secs, secs > 0 ? static_cast<double>(done) / secs : 0);

    if (failures.empty()) {
        std::printf("no divergences\n");
        return 0;
    }

    // Report the earliest failure in scan order: independent of thread
    // count, the same {seed, count} always names the same culprit.
    std::sort(failures.begin(), failures.end(),
              [](const Failure &a, const Failure &b) {
                  return a.index < b.index;
              });
    const Failure &f = failures.front();
    std::printf("FAILURE (%s) at seed %llu (program %llu):\n%s\n",
                f.kind.c_str(),
                static_cast<unsigned long long>(f.seed),
                static_cast<unsigned long long>(f.index),
                f.report.c_str());

    std::string source = f.source;
    if (opts.minimize &&
        (f.kind == "divergence" || f.kind == "timing-divergence"))
        source = minimizeFailure(opts, source);
    else if (opts.minimize)
        std::fprintf(stderr,
                     "not minimizing a %s failure (only concrete "
                     "divergences shrink soundly)\n",
                     f.kind.c_str());

    if (!opts.outDir.empty()) {
        ReproCase rc;
        rc.seed = f.seed;
        rc.profile = profileName(opts.profile);
        rc.note = f.kind;
        rc.source = source;
        const std::string path = opts.outDir + "/seed_" +
                                 std::to_string(f.seed) + ".s";
        if (saveRepro(path, rc))
            std::printf("repro written to %s\n", path.c_str());
        else
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
    } else if (opts.minimize) {
        std::printf("minimized source:\n%s", source.c_str());
    }
    return 1;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CliParser cli("visa-fuzz");
    std::string &seed = cli.flag("--seed", "N", "first seed", "1");
    std::string &count =
        cli.flag("--count", "N", "programs to test", "1000");
    std::string &threads = addThreadsFlag(cli);
    std::string &profile = cli.flag(
        "--profile", "P", "alu | branch | memory | mixed", "mixed");
    std::string &statements = cli.flag(
        "--statements", "N", "top-level statements per program", "48");
    std::string &max_insts = cli.flag("--max-insts", "N",
                                      "lockstep instruction cap",
                                      "2000000");
    std::string &oracle_every =
        cli.flag("--oracle-every", "K",
                 "timing oracle on every Kth program (0 = off)", "512");
    bool &minimize =
        cli.boolFlag("--minimize", "shrink the first failing program");
    std::string &out_dir =
        cli.flag("--out", "DIR", "write a repro file for the failure");
    std::string &replay_path =
        cli.flag("--replay", "FILE",
                 "re-run a saved repro, exit 1 if it still fails");
    std::string &inject_class = cli.flag(
        "--inject", "C",
        "fault-injection campaign: a class name (reg-bit-flip, "
        "load-value, load-addr, store-addr, branch-dir, branch-target, "
        "decode-imm, wakeup-stall, load-ext) or 'matrix' for all");
    std::string &trace_jsonl = cli.flag(
        "--trace-jsonl", "FILE",
        "with --inject: record a demo run's fault/recovery trace");
    std::string &cores_flag = addCoresFlag(cli);
    bool &cross_timing = cli.boolFlag(
        "--cross-check-timing",
        "compare the event-driven core against the per-cycle "
        "reference stepper instead of the architectural lockstep");
    bool &coverage = cli.boolFlag(
        "--coverage",
        "coverage-guided scan: profile every program, track "
        "cumulative block/edge coverage, keep discovering seeds "
        "(--out DIR)");
    bool &no_block_cache = addNoBlockCacheFlag(cli);
    std::string &debug = addDebugFlag(cli);

    try {
        cli.parse(argc, argv);
        applyDebugFlag(debug);
        // Must precede the first parallelFor: simThreads() reads the
        // exported count once.
        applyThreadsFlag(threads);
        // Must precede rig construction: each ExecCore latches the
        // default when built.
        if (no_block_cache)
            ExecCore::setBlockCacheDefault(false);

        Options opts;
        opts.seed = std::strtoull(seed.c_str(), nullptr, 0);
        opts.count = std::strtoull(count.c_str(), nullptr, 0);
        if (!parseProfile(profile.c_str(), opts.profile))
            fatal("unknown profile '%s'", profile.c_str());
        opts.statements = std::atoi(statements.c_str());
        opts.maxInstructions =
            std::strtoull(max_insts.c_str(), nullptr, 0);
        opts.oracleEvery =
            std::strtoull(oracle_every.c_str(), nullptr, 0);
        opts.minimize = minimize;
        opts.crossCheckTiming = cross_timing;
        opts.coverage = coverage;
        opts.outDir = out_dir;
        opts.replayPath = replay_path;
        opts.injectArg = inject_class;
        opts.traceJsonlPath = trace_jsonl;
        opts.cores = parseCoresFlag(cores_flag);

        if (!opts.replayPath.empty())
            return replay(opts);
        if (!opts.injectArg.empty())
            return injectCampaign(opts);
        if (opts.coverage)
            return coverageScan(opts);
        return fuzz(opts);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 2;
    }
}
