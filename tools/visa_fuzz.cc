/**
 * @file
 * visa-fuzz: differential fuzzing driver for the verification harness
 * (src/verify). Generates seeded random VPISA programs, runs each one
 * on the in-order reference pipeline and the out-of-order candidate in
 * lockstep, and periodically cross-checks the paper's timing
 * invariants with the oracle. Batches are scanned in parallel
 * (sim/parallel.hh); results are deterministic for a given
 * {seed, count, profile} triple regardless of thread count.
 *
 * On the first failure the driver prints the divergence report,
 * optionally shrinks the program with the instruction-deletion
 * minimizer (--minimize), and optionally writes a repro file in the
 * tests/corpus format (--out DIR). --replay FILE re-runs a saved repro
 * and exits non-zero if it still fails — the regression-replay tests
 * are built on that mode.
 *
 * --inject-load-ext-bug enables a deliberate subword-load
 * sign-extension bug in the candidate pipeline (a hidden test hook) to
 * demonstrate end-to-end detection and minimization.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "cpu/ooo_cpu.hh"
#include "isa/assembler.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"
#include "verify/corpus.hh"
#include "verify/lockstep.hh"
#include "verify/minimize.hh"
#include "verify/oracle.hh"
#include "verify/progen.hh"

using namespace visa;
using namespace visa::verify;

namespace
{

struct Options
{
    std::uint64_t seed = 1;
    std::uint64_t count = 1000;
    int threads = 0;    ///< 0 = simThreads() default
    GenProfile profile = GenProfile::Mixed;
    int statements = 48;
    std::uint64_t maxInstructions = 2'000'000;
    /** Run the timing oracle on every Kth program (0 = never). */
    std::uint64_t oracleEvery = 512;
    bool minimize = false;
    bool injectBug = false;
    std::string outDir;
    std::string replayPath;
};

void
usage(const char *argv0)
{
    std::fprintf(stderr,
        "usage: %s [options]\n"
        "  --seed N              first seed (default 1)\n"
        "  --count N             programs to test (default 1000)\n"
        "  --threads N           worker threads (default: all cores)\n"
        "  --profile P           alu | branch | memory | mixed "
        "(default mixed)\n"
        "  --statements N        top-level statements per program "
        "(default 48)\n"
        "  --max-insts N         lockstep instruction cap "
        "(default 2000000)\n"
        "  --oracle-every K      timing oracle on every Kth program "
        "(default 512, 0 = off)\n"
        "  --minimize            shrink the first failing program\n"
        "  --out DIR             write a repro file for the failure\n"
        "  --replay FILE         re-run a saved repro, exit 1 if it "
        "still fails\n"
        "  --inject-load-ext-bug enable the candidate's deliberate "
        "subword-load bug\n",
        argv0);
}

/** One recorded failure, keyed by scan index for determinism. */
struct Failure
{
    std::uint64_t index = 0;
    std::uint64_t seed = 0;
    std::string kind;    ///< "divergence", "timeout", or "oracle"
    std::string report;
    std::string source;
};

LockstepOptions
lockstepOptions(const Options &opts)
{
    LockstepOptions lo;
    lo.maxInstructions = opts.maxInstructions;
    if (opts.injectBug)
        lo.prepareComplex = [](OooCpu &cpu) {
            cpu.testInjectLoadExtBug(true);
        };
    return lo;
}

int
replay(const Options &opts)
{
    const ReproCase rc = loadRepro(opts.replayPath);
    const Program prog = assemble(rc.source);
    const LockstepResult r = runLockstep(prog, lockstepOptions(opts));
    if (r.equivalent) {
        std::printf("replay %s: equivalent (%llu instructions)\n",
                    opts.replayPath.c_str(),
                    static_cast<unsigned long long>(r.instructions));
        return 0;
    }
    std::printf("replay %s: %s\n%s\n", opts.replayPath.c_str(),
                r.diverged ? "DIVERGED" : "TIMED OUT",
                r.report.c_str());
    return 1;
}

/** Shrink a failing source; @return minimized source (or the input). */
std::string
minimizeFailure(const Options &opts, const std::string &source)
{
    LockstepOptions lo = lockstepOptions(opts);
    // Candidates that loop forever after a deleted decrement must be
    // rejected quickly, not after the full scan cap.
    lo.maxInstructions =
        std::min<std::uint64_t>(opts.maxInstructions, 200'000);
    lo.traceTail = 0;
    const MinimizeResult m =
        minimizeSource(source, [&](const Program &p) {
            // Deleting a jump or halt can send a candidate's PC off the
            // end of the text segment (a PanicError) — reject it, the
            // same way a timeout is rejected.
            try {
                return runLockstep(p, lo).diverged;
            } catch (const std::exception &) {
                return false;
            }
        });
    std::fprintf(stderr,
                 "minimized to %zu instructions (%d candidates)\n",
                 m.instructions, m.candidates);
    return m.source;
}

int
fuzz(const Options &opts)
{
    GenParams gen;
    gen.profile = opts.profile;
    gen.statements = opts.statements;

    std::atomic<std::uint64_t> instructions{0};
    std::mutex failMutex;
    std::vector<Failure> failures;
    const auto record = [&](Failure f) {
        std::lock_guard<std::mutex> lock(failMutex);
        failures.push_back(std::move(f));
    };

    const auto t0 = std::chrono::steady_clock::now();
    constexpr std::uint64_t batch = 256;
    std::uint64_t done = 0;
    for (std::uint64_t base = 0; base < opts.count; base += batch) {
        const std::size_t n = static_cast<std::size_t>(
            std::min(batch, opts.count - base));
        parallelFor(n, [&](std::size_t i) {
            const std::uint64_t index = base + i;
            const std::uint64_t seed = opts.seed + index;
            const GeneratedProgram g = generate(seed, gen);
            const LockstepResult r =
                runLockstep(g.program, lockstepOptions(opts));
            instructions += r.instructions;
            if (!r.equivalent) {
                record({index, seed,
                        r.diverged ? "divergence" : "timeout",
                        r.report, g.source});
                return;
            }
            if (opts.oracleEvery && index % opts.oracleEvery == 0) {
                GenParams og = gen;
                og.instrument = true;
                og.allowCalls = false;
                const GeneratedProgram inst = generate(seed, og);
                const OracleResult o = runTimingOracle(inst);
                if (!o.ok)
                    record({index, seed, "oracle", o.report,
                            inst.source});
            }
        });
        done += n;
        if (done % 2048 == 0 || done == opts.count || !failures.empty())
            std::fprintf(stderr, "scanned %llu/%llu programs\r",
                         static_cast<unsigned long long>(done),
                         static_cast<unsigned long long>(opts.count));
        if (!failures.empty())
            break;    // finish the batch, then stop deterministically
    }
    std::fprintf(stderr, "\n");

    const auto t1 = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration_cast<std::chrono::duration<double>>(t1 -
                                                                  t0)
            .count();
    std::printf("%llu programs, %llu instructions, %.2f s "
                "(%.0f programs/s)\n",
                static_cast<unsigned long long>(done),
                static_cast<unsigned long long>(instructions.load()),
                secs, secs > 0 ? static_cast<double>(done) / secs : 0);

    if (failures.empty()) {
        std::printf("no divergences\n");
        return 0;
    }

    // Report the earliest failure in scan order: independent of thread
    // count, the same {seed, count} always names the same culprit.
    std::sort(failures.begin(), failures.end(),
              [](const Failure &a, const Failure &b) {
                  return a.index < b.index;
              });
    const Failure &f = failures.front();
    std::printf("FAILURE (%s) at seed %llu (program %llu):\n%s\n",
                f.kind.c_str(),
                static_cast<unsigned long long>(f.seed),
                static_cast<unsigned long long>(f.index),
                f.report.c_str());

    std::string source = f.source;
    if (opts.minimize && f.kind == "divergence")
        source = minimizeFailure(opts, source);
    else if (opts.minimize)
        std::fprintf(stderr,
                     "not minimizing a %s failure (only concrete "
                     "divergences shrink soundly)\n",
                     f.kind.c_str());

    if (!opts.outDir.empty()) {
        ReproCase rc;
        rc.seed = f.seed;
        rc.profile = profileName(opts.profile);
        rc.note = f.kind +
                  (opts.injectBug ? " (with --inject-load-ext-bug)"
                                  : "");
        rc.source = source;
        const std::string path = opts.outDir + "/seed_" +
                                 std::to_string(f.seed) + ".s";
        if (saveRepro(path, rc))
            std::printf("repro written to %s\n", path.c_str());
        else
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
    } else if (opts.minimize) {
        std::printf("minimized source:\n%s", source.c_str());
    }
    return 1;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--seed") {
            opts.seed = std::strtoull(value(), nullptr, 0);
        } else if (arg == "--count") {
            opts.count = std::strtoull(value(), nullptr, 0);
        } else if (arg == "--threads") {
            opts.threads = std::atoi(value());
        } else if (arg == "--profile") {
            const char *name = value();
            if (!parseProfile(name, opts.profile)) {
                std::fprintf(stderr, "unknown profile '%s'\n", name);
                return 2;
            }
        } else if (arg == "--statements") {
            opts.statements = std::atoi(value());
        } else if (arg == "--max-insts") {
            opts.maxInstructions = std::strtoull(value(), nullptr, 0);
        } else if (arg == "--oracle-every") {
            opts.oracleEvery = std::strtoull(value(), nullptr, 0);
        } else if (arg == "--minimize") {
            opts.minimize = true;
        } else if (arg == "--out") {
            opts.outDir = value();
        } else if (arg == "--replay") {
            opts.replayPath = value();
        } else if (arg == "--inject-load-ext-bug") {
            opts.injectBug = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    if (opts.threads > 0) {
        // Must precede the first parallelFor: simThreads() reads it.
        const std::string n = std::to_string(opts.threads);
        setenv("VISA_THREADS", n.c_str(), 1);
    }

    try {
        if (!opts.replayPath.empty())
            return replay(opts);
        return fuzz(opts);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 2;
    }
}
