/**
 * @file
 * visa-trace: reads a trace produced by `visa-sim --trace-jsonl` (flat
 * JSONL) or `visa-sim --trace` (Chrome trace-event JSON) and reports
 *
 *  - event counts per kind,
 *  - per-sub-task checkpoint slack (PET - AET detection margin),
 *  - a checkpoint-margin histogram (power-of-two buckets),
 *  - frequency residency (cycles spent at each operating point),
 *
 * or, with --validate, checks the file against the trace schema (known
 * event names, matching categories, required fields, numeric argument
 * types) and exits non-zero on the first violation. The schema is the
 * kind table in sim/trace.cc — the validator and the emitter cannot
 * drift apart because both link the same table.
 */

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "sim/cli.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

using namespace visa;

namespace
{

// ---- a minimal recursive-descent JSON parser ----
//
// The traces are machine-written by this repository, so the parser
// favors smallness over diagnostics; it still rejects malformed input
// (validate mode depends on that).

struct JsonValue
{
    enum class Type { Null, Bool, Number, String, Array, Object };
    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    const JsonValue *
    find(const std::string &key) const
    {
        for (const auto &[k, v] : object)
            if (k == key)
                return &v;
        return nullptr;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    /** Parse one complete value; fatal on malformed input. */
    JsonValue
    parse()
    {
        JsonValue v = parseValue();
        skipSpace();
        if (pos_ != text_.size())
            fail("trailing garbage after JSON value");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const char *what) const
    {
        fatal("JSON parse error at offset %zu: %s", pos_, what);
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipSpace();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail("unexpected character");
        ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    JsonValue
    parseValue()
    {
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return parseString();
          case 't': case 'f': return parseBool();
          case 'n': return parseNull();
          default: return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        JsonValue v;
        v.type = JsonValue::Type::Object;
        expect('{');
        if (consume('}'))
            return v;
        do {
            JsonValue key = parseString();
            expect(':');
            v.object.emplace_back(std::move(key.string), parseValue());
        } while (consume(','));
        expect('}');
        return v;
    }

    JsonValue
    parseArray()
    {
        JsonValue v;
        v.type = JsonValue::Type::Array;
        expect('[');
        if (consume(']'))
            return v;
        do {
            v.array.push_back(parseValue());
        } while (consume(','));
        expect(']');
        return v;
    }

    JsonValue
    parseString()
    {
        JsonValue v;
        v.type = JsonValue::Type::String;
        expect('"');
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\') {
                if (pos_ >= text_.size())
                    fail("unterminated escape");
                char e = text_[pos_++];
                switch (e) {
                  case 'n': c = '\n'; break;
                  case 't': c = '\t'; break;
                  case 'r': c = '\r'; break;
                  case '"': case '\\': case '/': c = e; break;
                  default: fail("unsupported escape");
                }
            }
            v.string.push_back(c);
        }
        expect('"');
        return v;
    }

    JsonValue
    parseBool()
    {
        JsonValue v;
        v.type = JsonValue::Type::Bool;
        if (text_.compare(pos_, 4, "true") == 0) {
            v.boolean = true;
            pos_ += 4;
        } else if (text_.compare(pos_, 5, "false") == 0) {
            v.boolean = false;
            pos_ += 5;
        } else {
            fail("bad literal");
        }
        return v;
    }

    JsonValue
    parseNull()
    {
        if (text_.compare(pos_, 4, "null") != 0)
            fail("bad literal");
        pos_ += 4;
        JsonValue v;
        return v;
    }

    JsonValue
    parseNumber()
    {
        std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                std::strchr("+-.eE", text_[pos_])))
            ++pos_;
        if (pos_ == start)
            fail("expected a number");
        JsonValue v;
        v.type = JsonValue::Type::Number;
        v.number = std::stod(std::string(text_.substr(start,
                                                      pos_ - start)));
        return v;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

// ---- schema ----

const EventKindInfo *
lookupKind(const std::string &name, EventKind *kind_out)
{
    for (int k = 0; k < numEventKinds; ++k) {
        const EventKindInfo &info =
            eventKindInfo(static_cast<EventKind>(k));
        if (name == info.name) {
            if (kind_out)
                *kind_out = static_cast<EventKind>(k);
            return &info;
        }
    }
    return nullptr;
}

int schemaErrors = 0;

/**
 * Declared version of the file being read. Schema-1 files (PR 2
 * format) carry no version marker, so absence means 1; schema-2 files
 * lead with it (a `{"schema":2}` header line in JSONL, a root "schema"
 * key in Chrome traces). Files newer than this build's table are
 * rejected rather than mis-validated.
 */
int fileSchemaVersion = 1;

void
noteSchemaVersion(double declared)
{
    fileSchemaVersion = static_cast<int>(declared);
    if (fileSchemaVersion > traceSchemaVersion)
        fatal("trace declares schema %d but this build understands "
              "up to %d",
              fileSchemaVersion, traceSchemaVersion);
}

void
schemaError(std::size_t where, const char *fmt, const std::string &arg)
{
    std::fprintf(stderr, "schema: event %zu: ", where);
    std::fprintf(stderr, fmt, arg.c_str());
    std::fputc('\n', stderr);
    ++schemaErrors;
}

/** One decoded event, normalized across the two input formats. */
struct DecodedEvent
{
    EventKind kind{};
    double cycle = 0.0;
    std::map<std::string, double> args;
};

/**
 * Validate one flat event object (JSONL line or Chrome "args"-carrying
 * instant event) against the kind table; append to @p out on success.
 */
void
decodeEvent(std::size_t index, const std::string &name,
            const std::string &cat, double cycle, const JsonValue *args,
            std::vector<DecodedEvent> &out)
{
    EventKind kind;
    const EventKindInfo *info = lookupKind(name, &kind);
    if (!info) {
        schemaError(index, "unknown event name '%s'", name);
        return;
    }
    if (!cat.empty() && cat != info->category) {
        schemaError(index, "category mismatch for '%s'",
                    name + "' (got '" + cat);
        return;
    }
    DecodedEvent ev;
    ev.kind = kind;
    ev.cycle = cycle;
    for (int slot = 0; slot < 4; ++slot) {
        if (!info->args[slot])
            continue;
        if (!args) {
            schemaError(index, "missing args object for '%s'", name);
            return;
        }
        const JsonValue *v = args->find(info->args[slot]);
        if (!v || v->type != JsonValue::Type::Number) {
            schemaError(index, "missing/non-numeric argument '%s'",
                        std::string(info->args[slot]));
            return;
        }
        ev.args[info->args[slot]] = v->number;
    }
    out.push_back(std::move(ev));
}

std::vector<DecodedEvent>
loadJsonl(const std::string &text)
{
    std::vector<DecodedEvent> events;
    std::istringstream in(text);
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        JsonValue v = JsonParser(line).parse();
        if (v.type != JsonValue::Type::Object) {
            schemaError(lineno, "line is not a JSON object%s", "");
            continue;
        }
        const JsonValue *schema = v.find("schema");
        if (schema && !v.find("ev")) {
            // Schema-2+ header line; v1 files simply don't have one.
            if (schema->type != JsonValue::Type::Number)
                schemaError(lineno, "non-numeric schema version%s", "");
            else
                noteSchemaVersion(schema->number);
            continue;
        }
        const JsonValue *ev = v.find("ev");
        const JsonValue *cat = v.find("cat");
        const JsonValue *cycle = v.find("cycle");
        if (!ev || ev->type != JsonValue::Type::String || !cat ||
            cat->type != JsonValue::Type::String || !cycle ||
            cycle->type != JsonValue::Type::Number) {
            schemaError(lineno, "missing ev/cat/cycle fields%s", "");
            continue;
        }
        // JSONL carries the arguments inline; the decoder looks them
        // up in the same object.
        decodeEvent(lineno, ev->string, cat->string, cycle->number, &v,
                    events);
    }
    return events;
}

std::vector<DecodedEvent>
loadChrome(const std::string &text)
{
    std::vector<DecodedEvent> events;
    JsonValue root = JsonParser(text).parse();
    const JsonValue *schema = root.find("schema");
    if (schema && schema->type == JsonValue::Type::Number)
        noteSchemaVersion(schema->number);
    const JsonValue *list = root.find("traceEvents");
    if (!list || list->type != JsonValue::Type::Array)
        fatal("Chrome trace has no traceEvents array");
    std::size_t index = 0;
    for (const JsonValue &e : list->array) {
        ++index;
        if (e.type != JsonValue::Type::Object) {
            schemaError(index, "traceEvents entry is not an object%s",
                        "");
            continue;
        }
        const JsonValue *ph = e.find("ph");
        const JsonValue *name = e.find("name");
        if (!ph || ph->type != JsonValue::Type::String || !name ||
            name->type != JsonValue::Type::String) {
            schemaError(index, "entry lacks ph/name%s", "");
            continue;
        }
        // Metadata and counter tracks carry no schema'd payload.
        if (ph->string == "M" || ph->string == "C")
            continue;
        if (ph->string != "i" && ph->string != "B" &&
            ph->string != "E") {
            schemaError(index, "unexpected phase '%s'", ph->string);
            continue;
        }
        const JsonValue *ts = e.find("ts");
        if (!ts || ts->type != JsonValue::Type::Number) {
            schemaError(index, "entry lacks a numeric ts%s", "");
            continue;
        }
        const JsonValue *cat = e.find("cat");
        decodeEvent(index, name->string,
                    cat && cat->type == JsonValue::Type::String
                        ? cat->string
                        : "",
                    ts->number, e.find("args"), events);
    }
    return events;
}

// ---- reports ----

void
reportCounts(const std::vector<DecodedEvent> &events)
{
    std::map<std::string, std::size_t> counts;
    for (const DecodedEvent &e : events)
        ++counts[eventKindInfo(e.kind).name];
    std::printf("event counts (%zu total):\n", events.size());
    for (const auto &[name, n] : counts)
        std::printf("  %-20s %zu\n", name.c_str(), n);
}

void
reportSlack(const std::vector<DecodedEvent> &events)
{
    struct Agg
    {
        std::size_t n = 0;
        double sum = 0.0, min = 0.0, max = 0.0;
    };
    std::map<int, Agg> per_subtask;
    for (const DecodedEvent &e : events) {
        if (e.kind != EventKind::CheckpointHit)
            continue;
        double slack = e.args.at("slack_cycles");
        Agg &a = per_subtask[static_cast<int>(e.args.at("subtask"))];
        if (a.n == 0) {
            a.min = a.max = slack;
        } else {
            a.min = std::min(a.min, slack);
            a.max = std::max(a.max, slack);
        }
        ++a.n;
        a.sum += slack;
    }
    if (per_subtask.empty()) {
        std::printf("\nno checkpoint_hit events (watchdog not armed, or "
                    "the 'checkpoint' category was filtered out)\n");
        return;
    }
    std::printf("\nper-sub-task checkpoint slack (PET - AET, cycles):\n");
    std::printf("  %-8s %8s %12s %12s %12s\n", "subtask", "hits", "min",
                "mean", "max");
    for (const auto &[sub, a] : per_subtask)
        std::printf("  %-8d %8zu %12.0f %12.1f %12.0f\n", sub, a.n,
                    a.min, a.sum / static_cast<double>(a.n), a.max);
}

void
reportMarginHistogram(const std::vector<DecodedEvent> &events)
{
    // Power-of-two buckets keep the histogram readable across the wide
    // dynamic range slack can span.
    std::map<int, std::size_t> hist;
    std::size_t total = 0;
    for (const DecodedEvent &e : events) {
        if (e.kind != EventKind::CheckpointHit)
            continue;
        double slack = e.args.at("slack_cycles");
        int bucket = 0;
        while (slack >= (1u << bucket) && bucket < 31)
            ++bucket;
        ++hist[bucket];
        ++total;
    }
    if (!total)
        return;
    std::printf("\ncheckpoint-margin histogram:\n");
    for (const auto &[bucket, n] : hist) {
        unsigned lo = bucket ? 1u << (bucket - 1) : 0;
        std::printf("  [%10u, %10u) %8zu  %5.1f%%\n", lo, 1u << bucket,
                    n, 100.0 * static_cast<double>(n) /
                           static_cast<double>(total));
    }
}

void
reportFrequencyResidency(const std::vector<DecodedEvent> &events)
{
    // Integrate cycles between successive freq_change events; the tail
    // (after the last change) runs to the last event in the trace.
    std::map<unsigned, double> cycles_at;
    double last_cycle = 0.0;
    unsigned current = 0;
    bool have_freq = false;
    double end_cycle = 0.0;
    for (const DecodedEvent &e : events)
        end_cycle = std::max(end_cycle, e.cycle);
    for (const DecodedEvent &e : events) {
        if (e.kind != EventKind::FreqChange)
            continue;
        if (have_freq)
            cycles_at[current] += e.cycle - last_cycle;
        current = static_cast<unsigned>(e.args.at("to_mhz"));
        last_cycle = e.cycle;
        have_freq = true;
    }
    if (!have_freq) {
        std::printf("\nno freq_change events (single-frequency run, or "
                    "the 'dvs' category was filtered out)\n");
        return;
    }
    cycles_at[current] += end_cycle - last_cycle;
    double total = 0.0;
    for (const auto &[f, c] : cycles_at)
        total += c;
    std::printf("\nfrequency residency (cycles on the trace timeline):\n");
    for (const auto &[f, c] : cycles_at)
        std::printf("  %4u MHz %14.0f  %5.1f%%\n", f, c,
                    total > 0 ? 100.0 * c / total : 0.0);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CliParser cli("visa-trace", "trace.{json,jsonl}",
                  "a visa-sim event trace (JSONL or Chrome "
                  "trace-event JSON)");
    bool &validate_only = cli.boolFlag(
        "--validate",
        "schema-check only; exit non-zero on any violation");

    std::string path;
    try {
        cli.parse(argc, argv);
        path = cli.positional();
        if (path.empty())
            fatal("no trace file given");
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }

    try {
        std::ifstream in(path);
        if (!in)
            fatal("cannot open '%s'", path.c_str());
        std::ostringstream ss;
        ss << in.rdbuf();
        std::string text = ss.str();

        // Chrome traces are one big object; JSONL starts with a
        // one-line object. Sniff for the traceEvents key.
        bool chrome =
            text.find("\"traceEvents\"") != std::string::npos &&
            text.find("\"traceEvents\"") < 64;
        std::vector<DecodedEvent> events =
            chrome ? loadChrome(text) : loadJsonl(text);

        if (schemaErrors) {
            std::fprintf(stderr, "%d schema violation(s) in '%s'\n",
                         schemaErrors, path.c_str());
            return 1;
        }
        if (validate_only) {
            std::printf("OK: %zu events, schema v%d clean (%s format)\n",
                        events.size(), fileSchemaVersion,
                        chrome ? "chrome" : "jsonl");
            return 0;
        }

        std::printf("%s: %s format, schema v%d\n", path.c_str(),
                    chrome ? "chrome trace-event" : "jsonl",
                    fileSchemaVersion);
        reportCounts(events);
        reportSlack(events);
        reportMarginHistogram(events);
        reportFrequencyResidency(events);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
