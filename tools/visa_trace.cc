/**
 * @file
 * visa-trace: reads a trace produced by `visa-sim --trace-jsonl` (flat
 * JSONL) or `visa-sim --trace` (Chrome trace-event JSON) and reports
 *
 *  - event counts per kind,
 *  - per-sub-task checkpoint slack (PET - AET detection margin),
 *  - a checkpoint-margin histogram (power-of-two buckets),
 *  - fault injection / recovery (per-class detections, latency,
 *    restart cost) when the trace carries the 'fault' category,
 *  - frequency residency (cycles spent at each operating point),
 *
 * or, with --validate, checks the file against the trace schema (known
 * event names, matching categories, required fields, numeric argument
 * types) and exits non-zero on any violation. The schema is the kind
 * table in sim/trace.cc — the validator and the emitter cannot drift
 * apart because both link the same table. Counter tracks ("C" phase
 * events, including the profiler's slack/AET sinks) are checked
 * against the known counter names; event or counter names this build
 * does not know are *listed as warnings* rather than failing or being
 * skipped silently, so newer files degrade loudly but gracefully.
 *
 * Older files: schema-2 traces (pre multi-core, no per-event core
 * field) are accepted with a warning; headerless schema-1 files are
 * rejected — the v1 reader shim was removed along with the multi-core
 * schema bump.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "sim/cli.hh"
#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"
#include "verify/inject.hh"

using namespace visa;

namespace
{

using JsonValue = json::Value;
using JsonParser = json::Parser;

// ---- schema ----

const EventKindInfo *
lookupKind(const std::string &name, EventKind *kind_out)
{
    for (int k = 0; k < numEventKinds; ++k) {
        const EventKindInfo &info =
            eventKindInfo(static_cast<EventKind>(k));
        if (name == info.name) {
            if (kind_out)
                *kind_out = static_cast<EventKind>(k);
            return &info;
        }
    }
    return nullptr;
}

int schemaErrors = 0;

/**
 * Non-fatal findings: unknown event kinds or counter names. Collected
 * and listed (deduplicated, with occurrence counts) instead of either
 * failing validation or vanishing silently.
 */
std::map<std::string, std::size_t> schemaWarnings;

void
schemaWarning(const std::string &what)
{
    ++schemaWarnings[what];
}

void
printWarnings()
{
    if (schemaWarnings.empty())
        return;
    std::size_t total = 0;
    for (const auto &[what, n] : schemaWarnings)
        total += n;
    std::printf("%zu warning(s):\n", total);
    for (const auto &[what, n] : schemaWarnings)
        std::printf("  %s (x%zu)\n", what.c_str(), n);
}

/**
 * Counter tracks this build's sinks emit: the tracer's Chrome export
 * (sim/trace.cc) and the profiler's counter sink (sim/prof/prof.cc).
 */
const std::set<std::string> knownCounters = {
    "mshr_outstanding",
    "frequency_mhz",
    "subtask_slack",
    "subtask_aet",
    "checkpoint_headroom_pct",
};

/**
 * Declared version of the file being read (0 until a header is seen).
 * Schema-2+ files lead with it (a `{"schema":N}` header line in JSONL,
 * a root "schema" key in Chrome traces). Headerless files are the PR 2
 * schema-1 format, whose reader shim was removed: they are rejected
 * with a pointer at re-recording. Schema-2 files (no per-event core
 * field) are accepted with a warning; files newer than this build's
 * table are rejected rather than mis-validated.
 */
int fileSchemaVersion = 0;

void
noteSchemaVersion(double declared)
{
    fileSchemaVersion = static_cast<int>(declared);
    if (fileSchemaVersion > traceSchemaVersion)
        fatal("trace declares schema %d but this build understands "
              "up to %d",
              fileSchemaVersion, traceSchemaVersion);
    if (fileSchemaVersion < 2)
        fatal("trace declares schema %d: schema-1 files are no longer "
              "readable (the v1 shim was removed); re-record with a "
              "current visa-sim",
              fileSchemaVersion);
    if (fileSchemaVersion == 2)
        schemaWarning("schema-2 trace (pre multi-core): accepted, but "
                      "events carry no per-core 'core' field");
}

/** The v1 shim ("no header means schema 1") is gone: headerless files
 *  are rejected after the sniff instead of silently mis-read. */
void
requireSchemaHeader()
{
    if (fileSchemaVersion == 0)
        fatal("trace carries no schema header: schema-1 files are no "
              "longer readable (the v1 shim was removed); re-record "
              "with a current visa-sim");
}

void
schemaError(std::size_t where, const char *fmt, const std::string &arg)
{
    std::fprintf(stderr, "schema: event %zu: ", where);
    std::fprintf(stderr, fmt, arg.c_str());
    std::fputc('\n', stderr);
    ++schemaErrors;
}

/** One decoded event, normalized across the two input formats. */
struct DecodedEvent
{
    EventKind kind{};
    double cycle = 0.0;
    std::map<std::string, double> args;
};

/**
 * Validate one flat event object (JSONL line or Chrome "args"-carrying
 * instant event) against the kind table; append to @p out on success.
 */
void
decodeEvent(std::size_t index, const std::string &name,
            const std::string &cat, double cycle, const JsonValue *args,
            std::vector<DecodedEvent> &out)
{
    EventKind kind;
    const EventKindInfo *info = lookupKind(name, &kind);
    if (!info) {
        // Likely a kind from a newer build: degrade to a listed
        // warning so older validators don't reject newer traces.
        schemaWarning("unknown event kind '" + name + "'");
        return;
    }
    if (!cat.empty() && cat != info->category) {
        schemaError(index, "category mismatch for '%s'",
                    name + "' (got '" + cat);
        return;
    }
    DecodedEvent ev;
    ev.kind = kind;
    ev.cycle = cycle;
    for (int slot = 0; slot < 4; ++slot) {
        if (!info->args[slot])
            continue;
        if (!args) {
            schemaError(index, "missing args object for '%s'", name);
            return;
        }
        const JsonValue *v = args->find(info->args[slot]);
        if (!v || v->type != JsonValue::Type::Number) {
            schemaError(index, "missing/non-numeric argument '%s'",
                        std::string(info->args[slot]));
            return;
        }
        ev.args[info->args[slot]] = v->number;
    }
    out.push_back(std::move(ev));
}

std::vector<DecodedEvent>
loadJsonl(const std::string &text)
{
    std::vector<DecodedEvent> events;
    std::istringstream in(text);
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        JsonValue v = JsonParser(line).parse();
        if (v.type != JsonValue::Type::Object) {
            schemaError(lineno, "line is not a JSON object%s", "");
            continue;
        }
        const JsonValue *schema = v.find("schema");
        if (schema && !v.find("ev")) {
            // Schema-2+ header line; v1 files simply don't have one.
            if (schema->type != JsonValue::Type::Number)
                schemaError(lineno, "non-numeric schema version%s", "");
            else
                noteSchemaVersion(schema->number);
            continue;
        }
        const JsonValue *ev = v.find("ev");
        const JsonValue *cat = v.find("cat");
        const JsonValue *cycle = v.find("cycle");
        if (!ev || ev->type != JsonValue::Type::String || !cat ||
            cat->type != JsonValue::Type::String || !cycle ||
            cycle->type != JsonValue::Type::Number) {
            schemaError(lineno, "missing ev/cat/cycle fields%s", "");
            continue;
        }
        // Schema 3: an optional per-event core id (multi-core traces;
        // single-core events omit it).
        const JsonValue *core = v.find("core");
        if (core && (core->type != JsonValue::Type::Number ||
                     core->number < 0)) {
            schemaError(lineno, "non-numeric/negative 'core' field%s",
                        "");
            continue;
        }
        // JSONL carries the arguments inline; the decoder looks them
        // up in the same object.
        decodeEvent(lineno, ev->string, cat->string, cycle->number, &v,
                    events);
    }
    return events;
}

std::vector<DecodedEvent>
loadChrome(const std::string &text)
{
    std::vector<DecodedEvent> events;
    JsonValue root = JsonParser(text).parse();
    const JsonValue *schema = root.find("schema");
    if (schema && schema->type == JsonValue::Type::Number)
        noteSchemaVersion(schema->number);
    const JsonValue *list = root.find("traceEvents");
    if (!list || list->type != JsonValue::Type::Array)
        fatal("Chrome trace has no traceEvents array");
    std::size_t index = 0;
    for (const JsonValue &e : list->array) {
        ++index;
        if (e.type != JsonValue::Type::Object) {
            schemaError(index, "traceEvents entry is not an object%s",
                        "");
            continue;
        }
        const JsonValue *ph = e.find("ph");
        const JsonValue *name = e.find("name");
        if (!ph || ph->type != JsonValue::Type::String || !name ||
            name->type != JsonValue::Type::String) {
            schemaError(index, "entry lacks ph/name%s", "");
            continue;
        }
        // Metadata events carry no schema'd payload.
        if (ph->string == "M")
            continue;
        // Counter tracks: known name, numeric ts, and a non-empty args
        // object whose values are all numbers (what the viewers plot).
        if (ph->string == "C") {
            if (!knownCounters.count(name->string)) {
                schemaWarning("unknown counter track '" + name->string +
                              "'");
                continue;
            }
            const JsonValue *ts = e.find("ts");
            if (!ts || ts->type != JsonValue::Type::Number) {
                schemaError(index, "counter '%s' lacks a numeric ts",
                            name->string);
                continue;
            }
            const JsonValue *args = e.find("args");
            if (!args || args->type != JsonValue::Type::Object ||
                args->object.empty()) {
                schemaError(index, "counter '%s' lacks an args object",
                            name->string);
                continue;
            }
            bool ok = true;
            for (const auto &[k, v] : args->object) {
                if (v.type != JsonValue::Type::Number) {
                    schemaError(index,
                                "counter '%s' has a non-numeric value",
                                name->string);
                    ok = false;
                    break;
                }
            }
            (void)ok;
            continue;
        }
        if (ph->string != "i" && ph->string != "B" &&
            ph->string != "E") {
            schemaWarning("unexpected phase '" + ph->string + "'");
            continue;
        }
        const JsonValue *ts = e.find("ts");
        if (!ts || ts->type != JsonValue::Type::Number) {
            schemaError(index, "entry lacks a numeric ts%s", "");
            continue;
        }
        const JsonValue *cat = e.find("cat");
        decodeEvent(index, name->string,
                    cat && cat->type == JsonValue::Type::String
                        ? cat->string
                        : "",
                    ts->number, e.find("args"), events);
    }
    return events;
}

// ---- reports ----

void
reportCounts(const std::vector<DecodedEvent> &events)
{
    std::map<std::string, std::size_t> counts;
    for (const DecodedEvent &e : events)
        ++counts[eventKindInfo(e.kind).name];
    std::printf("event counts (%zu total):\n", events.size());
    for (const auto &[name, n] : counts)
        std::printf("  %-20s %zu\n", name.c_str(), n);
}

void
reportSlack(const std::vector<DecodedEvent> &events)
{
    struct Agg
    {
        std::size_t n = 0;
        double sum = 0.0, min = 0.0, max = 0.0;
    };
    std::map<int, Agg> per_subtask;
    for (const DecodedEvent &e : events) {
        if (e.kind != EventKind::CheckpointHit)
            continue;
        double slack = e.args.at("slack_cycles");
        Agg &a = per_subtask[static_cast<int>(e.args.at("subtask"))];
        if (a.n == 0) {
            a.min = a.max = slack;
        } else {
            a.min = std::min(a.min, slack);
            a.max = std::max(a.max, slack);
        }
        ++a.n;
        a.sum += slack;
    }
    if (per_subtask.empty()) {
        std::printf("\nno checkpoint_hit events (watchdog not armed, or "
                    "the 'checkpoint' category was filtered out)\n");
        return;
    }
    std::printf("\nper-sub-task checkpoint slack (PET - AET, cycles):\n");
    std::printf("  %-8s %8s %12s %12s %12s\n", "subtask", "hits", "min",
                "mean", "max");
    for (const auto &[sub, a] : per_subtask)
        std::printf("  %-8d %8zu %12.0f %12.1f %12.0f\n", sub, a.n,
                    a.min, a.sum / static_cast<double>(a.n), a.max);
}

void
reportMarginHistogram(const std::vector<DecodedEvent> &events)
{
    // Power-of-two buckets keep the histogram readable across the wide
    // dynamic range slack can span.
    std::map<int, std::size_t> hist;
    std::size_t total = 0;
    for (const DecodedEvent &e : events) {
        if (e.kind != EventKind::CheckpointHit)
            continue;
        double slack = e.args.at("slack_cycles");
        int bucket = 0;
        while (slack >= (1u << bucket) && bucket < 31)
            ++bucket;
        ++hist[bucket];
        ++total;
    }
    if (!total)
        return;
    std::printf("\ncheckpoint-margin histogram:\n");
    for (const auto &[bucket, n] : hist) {
        unsigned lo = bucket ? 1u << (bucket - 1) : 0;
        std::printf("  [%10u, %10u) %8zu  %5.1f%%\n", lo, 1u << bucket,
                    n, 100.0 * static_cast<double>(n) /
                           static_cast<double>(total));
    }
}

void
reportFaults(const std::vector<DecodedEvent> &events)
{
    // Injection campaigns (visa-fuzz --inject) and restart recovery
    // emit the 'fault' category; join injections to detections and
    // summarize restart cost.
    struct Agg
    {
        std::size_t injected = 0;
        std::size_t byDetector[2] = {0, 0};    // watchdog, lockstep
        double latencySum = 0.0;
        double latencyMax = 0.0;
        std::size_t detections = 0;
    };
    std::map<int, Agg> per_class;
    std::size_t restarts = 0;
    double restore_sum = 0.0;
    for (const DecodedEvent &e : events) {
        if (e.kind == EventKind::FaultInject) {
            ++per_class[static_cast<int>(e.args.at("class"))].injected;
        } else if (e.kind == EventKind::FaultDetect) {
            Agg &a = per_class[static_cast<int>(e.args.at("class"))];
            const int det = static_cast<int>(e.args.at("detector"));
            if (det == 0 || det == 1)
                ++a.byDetector[det];
            const double lat = e.args.at("latency_cycles");
            a.latencySum += lat;
            a.latencyMax = std::max(a.latencyMax, lat);
            ++a.detections;
        } else if (e.kind == EventKind::RecoveryRestart) {
            ++restarts;
            restore_sum += e.args.at("restore_cycles");
        }
    }
    if (per_class.empty() && !restarts)
        return;    // not an injection trace; keep the report quiet
    std::printf("\nfault injection / recovery:\n");
    std::printf("  %-16s %8s %9s %9s %12s %12s\n", "class", "injected",
                "watchdog", "lockstep", "latency-avg", "latency-max");
    for (const auto &[cls, a] : per_class) {
        const char *name =
            cls >= 0 && cls < verify::numFaultClasses
                ? verify::faultClassName(
                      static_cast<verify::FaultClass>(cls))
                : "?";
        std::printf("  %-16s %8zu %9zu %9zu %12.0f %12.0f\n", name,
                    a.injected, a.byDetector[0], a.byDetector[1],
                    a.detections
                        ? a.latencySum /
                              static_cast<double>(a.detections)
                        : 0.0,
                    a.latencyMax);
    }
    if (restarts)
        std::printf("  restarts: %zu (restore %.0f cycles total, "
                    "%.0f avg)\n",
                    restarts, restore_sum,
                    restore_sum / static_cast<double>(restarts));
}

void
reportFrequencyResidency(const std::vector<DecodedEvent> &events)
{
    // Integrate cycles between successive freq_change events; the tail
    // (after the last change) runs to the last event of its segment.
    // A task_begin whose timestamp goes backwards marks a trace that
    // concatenates several runs (e.g. the visa-fuzz --inject demo
    // legs), each restarting at cycle 0: close the open interval at
    // the old segment's end instead of integrating a negative span.
    // Spans are also clamped at 0 because a few event kinds (squash)
    // are stamped with a future cycle, so file order is only
    // near-monotonic within one run.
    std::map<unsigned, double> cycles_at;
    double last_cycle = 0.0;
    unsigned current = 0;
    bool have_freq = false;
    bool any_freq = false;
    double seg_end = 0.0;
    double prev_cycle = 0.0;
    for (const DecodedEvent &e : events) {
        if (e.kind == EventKind::TaskBegin && e.cycle < prev_cycle) {
            if (have_freq)
                cycles_at[current] +=
                    std::max(0.0, seg_end - last_cycle);
            have_freq = false;
            last_cycle = 0.0;
            seg_end = 0.0;
        }
        prev_cycle = e.cycle;
        seg_end = std::max(seg_end, e.cycle);
        if (e.kind != EventKind::FreqChange)
            continue;
        if (have_freq)
            cycles_at[current] += std::max(0.0, e.cycle - last_cycle);
        current = static_cast<unsigned>(e.args.at("to_mhz"));
        last_cycle = e.cycle;
        have_freq = true;
        any_freq = true;
    }
    if (!any_freq) {
        std::printf("\nno freq_change events (single-frequency run, or "
                    "the 'dvs' category was filtered out)\n");
        return;
    }
    if (have_freq)
        cycles_at[current] += std::max(0.0, seg_end - last_cycle);
    double total = 0.0;
    for (const auto &[f, c] : cycles_at)
        total += c;
    std::printf("\nfrequency residency (cycles on the trace timeline):\n");
    for (const auto &[f, c] : cycles_at)
        std::printf("  %4u MHz %14.0f  %5.1f%%\n", f, c,
                    total > 0 ? 100.0 * c / total : 0.0);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CliParser cli("visa-trace", "trace.{json,jsonl}",
                  "a visa-sim event trace (JSONL or Chrome "
                  "trace-event JSON)");
    bool &validate_only = cli.boolFlag(
        "--validate",
        "schema-check only; exit non-zero on any violation");

    std::string path;
    try {
        cli.parse(argc, argv);
        path = cli.positional();
        if (path.empty())
            fatal("no trace file given");
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }

    try {
        std::ifstream in(path);
        if (!in)
            fatal("cannot open '%s'", path.c_str());
        std::ostringstream ss;
        ss << in.rdbuf();
        std::string text = ss.str();

        // Chrome traces are one big object; JSONL starts with a
        // one-line object. Sniff for the traceEvents key.
        bool chrome =
            text.find("\"traceEvents\"") != std::string::npos &&
            text.find("\"traceEvents\"") < 64;
        std::vector<DecodedEvent> events =
            chrome ? loadChrome(text) : loadJsonl(text);
        requireSchemaHeader();

        if (schemaErrors) {
            printWarnings();
            std::fprintf(stderr, "%d schema violation(s) in '%s'\n",
                         schemaErrors, path.c_str());
            return 1;
        }
        if (validate_only) {
            printWarnings();
            std::printf("OK: %zu events, schema v%d clean (%s format, "
                        "%zu warning(s))\n",
                        events.size(), fileSchemaVersion,
                        chrome ? "chrome" : "jsonl",
                        schemaWarnings.size());
            return 0;
        }

        std::printf("%s: %s format, schema v%d\n", path.c_str(),
                    chrome ? "chrome trace-event" : "jsonl",
                    fileSchemaVersion);
        printWarnings();
        reportCounts(events);
        reportSlack(events);
        reportMarginHistogram(events);
        reportFaults(events);
        reportFrequencyResidency(events);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
