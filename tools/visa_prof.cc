/**
 * @file
 * visa-prof: reads a block-granular execution profile produced by
 * `visa-sim --profile-json` (or produces one itself, see below) and
 * reports
 *
 *  - the top-N hottest blocks with their disassembly (--top),
 *  - the block-to-block edge graph (--edges),
 *  - the per-sub-task WCET-vs-AET slack table with headroom
 *    histograms per DVS frequency (--slack), optionally reconciled
 *    against a `--stats-json` stats dump (--reconcile),
 *  - a per-block diff between two profiles (--diff), for comparing a
 *    fast run against a slow one,
 *  - a fault join (--faults): fault_inject / fault_detect /
 *    recovery_restart events from a trace JSONL (visa-fuzz --inject
 *    --trace-jsonl, or visa-sim under a restart policy) attributed to
 *    the profile's basic blocks, so injection coverage is reported
 *    per block.
 *
 * With --workload/--cpu instead of a profile file, the tool builds the
 * rig itself through SimBuilder, runs the program once under an
 * installed profiler, and reports (writing the profile with --out).
 */

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "sim/builder.hh"
#include "sim/cli.hh"
#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/prof/prof.hh"
#include "verify/inject.hh"
#include "workloads/clab.hh"

using namespace visa;

namespace
{

std::uint64_t
num(const json::Value &v)
{
    if (v.type != json::Value::Type::Number)
        fatal("profile: expected a number");
    return static_cast<std::uint64_t>(v.number);
}

const json::Value &
loadProfile(json::Value &slot, const std::string &path)
{
    slot = json::parseFile(path);
    const json::Value *kind = slot.find("kind");
    if (!kind || kind->string != "visa-profile")
        fatal("'%s' is not a visa-profile document", path.c_str());
    return slot;
}

void
reportSummary(const json::Value &p)
{
    const json::Value &t = p.at("total");
    std::printf("profile: %" PRIu64 " instructions, %" PRIu64
                " block entries, %zu profiled blocks, %zu edges\n",
                num(t.at("insts")), num(t.at("block_entries")),
                p.at("blocks").array.size(), p.at("edges").array.size());
    const std::uint64_t attr = num(t.at("attributed_cycles"));
    const std::uint64_t unattr = num(t.at("unattributed_cycles"));
    if (attr || unattr)
        std::printf("cycles: %" PRIu64 " attributed to instructions, %"
                    PRIu64 " idle/DVS software\n", attr, unattr);
    if (num(t.at("checkpoints")))
        std::printf("checkpoints: %" PRIu64 " observations, %" PRIu64
                    " AET cycles total\n",
                    num(t.at("checkpoints")), num(t.at("aet_cycles_total")));
}

void
reportHotBlocks(const json::Value &p, int top)
{
    const auto &blocks = p.at("blocks").array;
    const json::Value &t = p.at("total");
    const double tot_insts =
        std::max<double>(1.0, static_cast<double>(num(t.at("insts"))));
    const double tot_cycles = std::max<double>(
        1.0, static_cast<double>(num(t.at("attributed_cycles"))));
    std::printf("\nhottest blocks (of %zu):\n", blocks.size());
    int shown = 0;
    for (const json::Value &b : blocks) {
        if (shown++ >= top)
            break;
        const std::uint64_t cycles = num(b.at("cycles"));
        const std::uint64_t insts = num(b.at("insts"));
        std::printf("  0x%08" PRIx64 "  %8" PRIu64 " entries  %10" PRIu64
                    " insts (%5.1f%%)",
                    num(b.at("pc")), num(b.at("entries")), insts,
                    100.0 * static_cast<double>(insts) / tot_insts);
        if (cycles)
            std::printf("  %10" PRIu64 " cycles (%5.1f%%)", cycles,
                        100.0 * static_cast<double>(cycles) / tot_cycles);
        std::printf("\n");
        for (const json::Value &d : b.at("disasm").array)
            std::printf("      %s\n", d.string.c_str());
    }
}

void
reportEdges(const json::Value &p)
{
    std::printf("\nedge graph (from -> to: count):\n");
    for (const json::Value &e : p.at("edges").array) {
        const json::Value &from = e.at("from");
        if (from.number < 0)
            std::printf("  %-12s", "(start)");
        else
            std::printf("  0x%08" PRIx64 "  ", num(from));
        std::printf("-> 0x%08" PRIx64 "  %10" PRIu64 "\n",
                    num(e.at("to")), num(e.at("count")));
    }
}

void
reportSlack(const json::Value &p)
{
    const auto &subs = p.at("slack").at("subtasks").array;
    if (subs.empty()) {
        std::printf("\nno checkpoint observations (free run, or the "
                    "program has no sub-task markers)\n");
        return;
    }
    std::printf("\nper-sub-task WCET vs AET (cycles, all observations):"
                "\n  %-8s %5s %12s %12s %12s %12s %9s\n",
                "subtask", "n", "aet_total", "wcet_total", "pet_total",
                "slack_tot", "headroom");
    std::uint64_t aet_total = 0;
    for (const json::Value &s : subs) {
        const std::uint64_t aet = num(s.at("aet_total"));
        const std::uint64_t wcet = num(s.at("wcet_total"));
        aet_total += aet;
        const double headroom =
            wcet > 0 ? 100.0 *
                           static_cast<double>(wcet > aet ? wcet - aet : 0) /
                           static_cast<double>(wcet)
                     : 0.0;
        std::printf("  %-8" PRIu64 " %5" PRIu64 " %12" PRIu64 " %12" PRIu64
                    " %12" PRIu64 " %12" PRIu64 "  %7.1f%%\n",
                    num(s.at("subtask")), num(s.at("n")), aet, wcet,
                    num(s.at("pet_total")), num(s.at("slack_total")),
                    headroom);
    }
    std::printf("  AET total across sub-tasks: %" PRIu64
                " cycles (profile total %" PRIu64 ")\n",
                aet_total, num(p.at("total").at("aet_cycles_total")));

    for (const json::Value &h : p.at("slack").at("headroom_hist").array) {
        std::printf("  headroom at %" PRIu64 " MHz (10%% buckets, "
                    "overruns %" PRIu64 "):",
                    num(h.at("freq")), num(h.at("overruns")));
        for (const json::Value &b : h.at("buckets_pct10").array)
            std::printf(" %" PRIu64, num(b));
        std::printf("\n");
    }

    const auto &attr = p.at("wcet_attribution").array;
    if (!attr.empty()) {
        std::printf("\nbound-side attribution (analyzer worst-case path "
                    "at the top DVS setting):\n");
        for (const json::Value &a : attr) {
            std::printf("  subtask %" PRIu64 ": %" PRIu64 " cycles\n",
                        num(a.at("subtask")), num(a.at("cycles")));
            for (const json::Value &c : a.at("charges").array) {
                std::printf("    %-10s 0x%08" PRIx64 "  x%-8" PRIu64
                            " %10" PRIu64 " cycles\n",
                            c.at("kind").string.c_str(), num(c.at("pc")),
                            num(c.at("count")), num(c.at("cycles")));
            }
        }
    }
}

/**
 * Check the profile's AET totals against a stats JSON dump from the
 * same run (`visa-sim --stats-json`): the runtime's aet_cycles_total
 * counter must match the profile's exactly.
 */
int
reconcile(const json::Value &p, const std::string &stats_path)
{
    const json::Value stats = json::parseFile(stats_path);
    const json::Value *rt = stats.find("runtime");
    if (!rt)
        fatal("'%s' has no 'runtime' stats group", stats_path.c_str());
    const std::uint64_t stat_aet = num(rt->at("aet_cycles_total"));
    const std::uint64_t prof_aet =
        num(p.at("total").at("aet_cycles_total"));
    if (stat_aet != prof_aet) {
        std::printf("RECONCILE FAIL: profile AET total %" PRIu64
                    " != runtime counter %" PRIu64 "\n",
                    prof_aet, stat_aet);
        return 1;
    }
    std::printf("reconciled: profile AET total == runtime counter (%"
                PRIu64 " cycles)\n", prof_aet);
    return 0;
}

struct BlockRow
{
    std::uint64_t entries = 0, insts = 0, cycles = 0;
};

std::map<std::uint64_t, BlockRow>
blockTable(const json::Value &p)
{
    std::map<std::uint64_t, BlockRow> out;
    for (const json::Value &b : p.at("blocks").array) {
        BlockRow r;
        r.entries = num(b.at("entries"));
        r.insts = num(b.at("insts"));
        r.cycles = num(b.at("cycles"));
        out[num(b.at("pc"))] = r;
    }
    return out;
}

void
reportDiff(const json::Value &a, const json::Value &b,
           const std::string &path_a, const std::string &path_b)
{
    const auto ta = blockTable(a);
    const auto tb = blockTable(b);
    std::printf("\nper-block diff (%s -> %s):\n  %-12s %12s %12s %12s\n",
                path_a.c_str(), path_b.c_str(), "pc", "d_entries",
                "d_insts", "d_cycles");
    std::vector<std::uint64_t> pcs;
    for (const auto &[pc, r] : ta)
        pcs.push_back(pc);
    for (const auto &[pc, r] : tb)
        if (!ta.count(pc))
            pcs.push_back(pc);
    std::sort(pcs.begin(), pcs.end());
    for (std::uint64_t pc : pcs) {
        const BlockRow ra = ta.count(pc) ? ta.at(pc) : BlockRow{};
        const BlockRow rb = tb.count(pc) ? tb.at(pc) : BlockRow{};
        if (ra.entries == rb.entries && ra.insts == rb.insts &&
            ra.cycles == rb.cycles)
            continue;
        std::printf("  0x%08" PRIx64 " %+12" PRId64 " %+12" PRId64
                    " %+12" PRId64 "\n",
                    pc,
                    static_cast<std::int64_t>(rb.entries) -
                        static_cast<std::int64_t>(ra.entries),
                    static_cast<std::int64_t>(rb.insts) -
                        static_cast<std::int64_t>(ra.insts),
                    static_cast<std::int64_t>(rb.cycles) -
                        static_cast<std::int64_t>(ra.cycles));
    }
}

/**
 * Join fault events from a trace JSONL against the profile's blocks:
 * each fault_inject lands in the basic block whose [pc, pc+4*words)
 * range contains the corrupted pc. Detections and restarts are global
 * (they carry no pc), so they are summarized underneath.
 */
void
reportFaultJoin(const json::Value &p, const std::string &trace_path)
{
    struct BlockFaults
    {
        std::uint64_t entries = 0;
        std::map<int, std::uint64_t> injectedByClass;
    };
    // block pc -> extent + profile entries
    std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>>
        extents;    // pc -> {end, entries}
    for (const json::Value &b : p.at("blocks").array)
        extents[num(b.at("pc"))] = {
            num(b.at("pc")) + 4 * num(b.at("words")),
            num(b.at("entries"))};

    std::map<std::uint64_t, BlockFaults> joined;
    std::uint64_t injected = 0, unattributed = 0, detections = 0,
                  restarts = 0;
    std::ifstream in(trace_path);
    if (!in)
        fatal("cannot open '%s'", trace_path.c_str());
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line.find("\"ev\"") == std::string::npos)
            continue;
        json::Value v = json::Parser(line).parse();
        const json::Value *ev = v.find("ev");
        if (!ev || ev->type != json::Value::Type::String)
            continue;
        if (ev->string == "fault_detect") {
            ++detections;
        } else if (ev->string == "recovery_restart") {
            ++restarts;
        } else if (ev->string == "fault_inject") {
            ++injected;
            const std::uint64_t pc = num(v.at("pc"));
            const int cls = static_cast<int>(num(v.at("class")));
            // largest block pc <= fault pc, then range check
            auto it = extents.upper_bound(pc);
            if (it == extents.begin() ||
                pc >= (--it)->second.first) {
                ++unattributed;
                continue;
            }
            BlockFaults &bf = joined[it->first];
            bf.entries = it->second.second;
            ++bf.injectedByClass[cls];
        }
    }
    std::printf("\nfault join (%s):\n", trace_path.c_str());
    if (!injected && !detections && !restarts) {
        std::printf("  no fault events in the trace\n");
        return;
    }
    std::printf("  %-12s %10s %10s  %s\n", "block", "entries",
                "injected", "classes");
    for (const auto &[pc, bf] : joined) {
        std::uint64_t total = 0;
        std::string classes;
        for (const auto &[cls, n] : bf.injectedByClass) {
            total += n;
            if (!classes.empty())
                classes += ", ";
            classes += verify::faultClassName(
                static_cast<verify::FaultClass>(cls));
        }
        std::printf("  0x%08" PRIx64 " %10" PRIu64 " %10" PRIu64 "  %s\n",
                    pc, bf.entries, total, classes.c_str());
    }
    if (unattributed)
        std::printf("  (%" PRIu64 " injection(s) outside profiled "
                    "blocks)\n", unattributed);
    std::printf("  %" PRIu64 " injected, %" PRIu64 " detected, %" PRIu64
                " restart(s)\n", injected, detections, restarts);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CliParser cli("visa-prof", "profile.json",
                  "a visa-sim --profile-json document (or use "
                  "--workload to produce one)");
    std::string &top =
        cli.flag("--top", "N", "hottest blocks to show", "10");
    bool &do_edges = cli.boolFlag("--edges", "dump the edge graph");
    bool &do_slack =
        cli.boolFlag("--slack", "per-sub-task WCET-vs-AET slack table");
    std::string &diff_path =
        cli.flag("--diff", "FILE", "diff against a second profile");
    std::string &reconcile_path =
        cli.flag("--reconcile", "FILE",
                 "check AET totals against a --stats-json dump");
    std::string &faults_path =
        cli.flag("--faults", "FILE",
                 "join fault events from a trace JSONL to blocks");
    std::string &workload =
        cli.flag("--workload", "NAME",
                 "produce: run a built-in benchmark under a profiler");
    std::string &cpu_kind =
        cli.flag("--cpu", "simple|complex|simple-mode",
                 "produce: pipeline for the run", "simple");
    std::string &freq =
        cli.flag("--freq", "MHZ", "produce: core clock", "1000");
    std::string &cores = addCoresFlag(cli);
    std::string &out_path =
        cli.flag("--out", "FILE",
                 "produce: write the profile JSON here ('-' = stdout)");

    try {
        cli.parse(argc, argv);
        const std::string path = cli.positional();
        json::Value doc;

        if (!workload.empty()) {
            if (!path.empty())
                fatal("give either a profile file or --workload, "
                      "not both");
            CpuKind kind;
            if (cpu_kind == "simple")
                kind = CpuKind::Simple;
            else if (cpu_kind == "complex")
                kind = CpuKind::Complex;
            else if (cpu_kind == "simple-mode")
                kind = CpuKind::ComplexSimpleMode;
            else
                fatal("unknown --cpu '%s'", cpu_kind.c_str());
            // --cores N profiles core 0 of an N-core chip: the run
            // goes through the shared bus + L2, so hot blocks shift
            // with the contention model rather than the private rig.
            auto sim = SimBuilder()
                           .workload(workload)
                           .cpu(kind)
                           .frequency(static_cast<MHz>(std::stoul(freq)))
                           .cores(parseCoresFlag(cores))
                           .build();
            prof::BlockProfiler profiler(sim->program());
            {
                prof::ScopedProfiler scope(profiler);
                RunResult res = sim->cpu().run(20'000'000'000ULL);
                if (res.reason != StopReason::Halted)
                    fatal("program did not halt");
            }
            std::ostringstream ss;
            profiler.writeJson(ss);
            if (!out_path.empty())
                withOutputStream(out_path, [&](std::ostream &os) {
                    os << ss.str();
                });
            doc = json::Parser(ss.str()).parse();
        } else {
            if (path.empty()) {
                cli.printUsage(stderr);
                return 2;
            }
            loadProfile(doc, path);
        }

        reportSummary(doc);
        if (!diff_path.empty()) {
            json::Value other;
            loadProfile(other, diff_path);
            reportDiff(doc, other, path.empty() ? "produced" : path,
                       diff_path);
            return 0;
        }
        reportHotBlocks(doc, std::stoi(top));
        if (do_edges)
            reportEdges(doc);
        if (do_slack)
            reportSlack(doc);
        if (!faults_path.empty())
            reportFaultJoin(doc, faults_path);
        if (!reconcile_path.empty())
            return reconcile(doc, reconcile_path);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
