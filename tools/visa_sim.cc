/**
 * @file
 * visa-sim: the command-line driver. Assembles a VPISA source file and
 * runs it on either pipeline, disassembles it, and/or bounds it with
 * the static WCET analyzer.
 *
 *   visa-sim program.s                      run on simple-fixed
 *   visa-sim --cpu complex program.s        run on the OOO pipeline
 *   visa-sim --cpu simple-mode program.s    OOO pipeline, simple mode
 *   visa-sim --freq 250 program.s           clock in MHz (default 1000)
 *   visa-sim --wcet program.s               static analysis across DVS
 *   visa-sim --disasm program.s             annotated disassembly
 *   visa-sim --stats program.s              dump simulation statistics
 *   visa-sim --debug Fetch,Watchdog ...     enable trace flags
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "cpu/ooo_cpu.hh"
#include "cpu/simple_cpu.hh"
#include "isa/assembler.hh"
#include "isa/disassembler.hh"
#include "sim/logging.hh"
#include "wcet/analyzer.hh"

using namespace visa;

namespace
{

void
usage()
{
    std::fprintf(stderr,
                 "usage: visa-sim [--cpu simple|complex|simple-mode] "
                 "[--freq MHz]\n"
                 "                [--wcet] [--disasm] [--stats] "
                 "[--encodings]\n"
                 "                [--debug flag,flag] program.s\n");
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '%s'", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string cpu_kind = "simple";
    MHz freq = 1000;
    bool do_wcet = false;
    bool do_disasm = false;
    bool do_stats = false;
    bool show_encodings = false;
    std::string path;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--cpu") {
            cpu_kind = next();
        } else if (arg == "--freq") {
            freq = static_cast<MHz>(std::stoul(next()));
        } else if (arg == "--wcet") {
            do_wcet = true;
        } else if (arg == "--disasm") {
            do_disasm = true;
        } else if (arg == "--stats") {
            do_stats = true;
        } else if (arg == "--encodings") {
            show_encodings = true;
        } else if (arg == "--debug") {
            std::istringstream flags(next());
            std::string flag;
            while (std::getline(flags, flag, ','))
                Debug::enable(flag);
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
            fatal("unknown option '%s'", arg.c_str());
        } else {
            path = arg;
        }
    }
    if (path.empty()) {
        usage();
        return 2;
    }

    try {
        Program prog = assemble(readFile(path));
        std::printf("assembled %zu instructions (%zu sub-task markers, "
                    "%zu loop bounds)\n",
                    prog.size(), prog.subtaskStarts.size(),
                    prog.loopBounds.size());

        if (do_disasm) {
            DisasmOptions opts;
            opts.showEncodings = show_encodings;
            std::fputs(disassembleProgram(prog, opts).c_str(), stdout);
        }

        if (do_wcet) {
            WcetAnalyzer analyzer(prog);
            DMissProfile dmiss = profileDataMisses(prog);
            std::printf("\nstatic WCET (trace-padded D-cache):\n");
            for (MHz f : {100u, 250u, 500u, 750u, 1000u}) {
                WcetReport rep = analyzer.analyze(f, &dmiss);
                std::printf("  %4u MHz: %10llu cycles  (%.2f us)\n", f,
                            static_cast<unsigned long long>(
                                rep.taskCycles),
                            rep.taskMicros());
            }
        }

        MainMemory mem;
        Platform platform;
        MemController memctrl;
        mem.loadProgram(prog);
        std::unique_ptr<Cpu> cpu;
        if (cpu_kind == "simple") {
            cpu = std::make_unique<SimpleCpu>(prog, mem, platform,
                                              memctrl);
        } else if (cpu_kind == "complex" || cpu_kind == "simple-mode") {
            auto ooo = std::make_unique<OooCpu>(prog, mem, platform,
                                                memctrl);
            if (cpu_kind == "simple-mode")
                ooo->switchToSimple();
            cpu = std::move(ooo);
        } else {
            fatal("unknown --cpu '%s'", cpu_kind.c_str());
        }
        cpu->resetForTask();
        cpu->setFrequency(freq);
        RunResult res = cpu->run(20'000'000'000ULL);
        if (res.reason != StopReason::Halted)
            fatal("program did not halt (budget/watchdog)");

        std::printf("\nran on %s @ %u MHz: %llu cycles, %llu "
                    "instructions (IPC %.2f, %.2f us)\n",
                    cpu_kind.c_str(), freq,
                    static_cast<unsigned long long>(cpu->cycles()),
                    static_cast<unsigned long long>(cpu->retired()),
                    static_cast<double>(cpu->retired()) /
                        static_cast<double>(cpu->cycles()),
                    static_cast<double>(cpu->cycles()) / freq);
        if (platform.checksumReported())
            std::printf("checksum: 0x%x\n", platform.lastChecksum());
        if (!platform.consoleOutput().empty())
            std::printf("console: %s\n",
                        platform.consoleOutput().c_str());
        if (do_stats) {
            std::printf("\n");
            std::ostringstream os;
            cpu->dumpStats(os);
            std::fputs(os.str().c_str(), stdout);
        }
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
