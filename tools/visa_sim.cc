/**
 * @file
 * visa-sim: the command-line driver. Assembles a VPISA source file (or
 * builds a named C-lab workload) and runs it on either pipeline, under
 * the VISA run-time system if requested — single-task periodic
 * execution, or a preemptive multi-task set under EDF/RM scheduling —
 * with structured event tracing and JSON statistics export.
 *
 *   visa-sim program.s                      run on simple-fixed
 *   visa-sim --cpu complex program.s        run on the OOO pipeline
 *   visa-sim --cpu simple-mode program.s    OOO pipeline, simple mode
 *   visa-sim --freq 250 program.s           clock in MHz (default 1000)
 *   visa-sim --wcet program.s               static analysis across DVS
 *   visa-sim --disasm program.s             annotated disassembly
 *   visa-sim --stats program.s              dump simulation statistics
 *   visa-sim --workload fft ...             built-in benchmark instead
 *                                           of a source file
 *   visa-sim --runtime visa --workload fft --tasks 20
 *                                           periodic execution under the
 *                                           VISA run-time system
 *   visa-sim --taskset trio --jobs 40 --util 0.6
 *                                           preemptive multi-task EDF
 *                                           schedule of a benchmark set
 *   visa-sim --cores 4 --taskset clab6 --policy pedf
 *                                           partitioned EDF over a
 *                                           4-core chip (gedf = global)
 *   visa-sim --trace out.json ...           Chrome/Perfetto event trace
 *   visa-sim --trace-jsonl out.jsonl ...    flat JSONL event trace
 *   visa-sim --stats-json stats.json ...    hierarchical JSON stats
 *   visa-sim --debug help                   list debug/trace flags
 */

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "bench/bench_util.hh"
#include "core/runtime.hh"
#include "core/scheduler.hh"
#include "isa/assembler.hh"
#include "isa/disassembler.hh"
#include "sim/builder.hh"
#include "sim/cli.hh"
#include "sim/logging.hh"
#include "sim/prof/prof.hh"
#include "sim/trace.hh"
#include "wcet/analyzer.hh"
#include "workloads/clab.hh"
#include "workloads/tasksets.hh"

using namespace visa;

namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '%s'", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

struct Options
{
    CliParser cli{"visa-sim", "program.s",
                  "VPISA source file (or use --workload/--taskset)"};
    std::string &cpu_kind =
        cli.flag("--cpu", "simple|complex|simple-mode",
                 "pipeline for the free run", "simple");
    std::string &freq =
        cli.flag("--freq", "MHZ", "core clock for the free run", "1000");
    bool &do_wcet =
        cli.boolFlag("--wcet", "static WCET analysis across DVS points");
    bool &do_disasm =
        cli.boolFlag("--disasm", "annotated disassembly");
    bool &do_stats =
        cli.boolFlag("--stats", "dump simulation statistics");
    bool &show_encodings =
        cli.boolFlag("--encodings", "instruction encodings in --disasm");
    std::string &workload =
        cli.flag("--workload", "NAME", "built-in benchmark to run");
    std::string &runtime =
        cli.flag("--runtime", "visa|simple",
                 "periodic execution under a DVS runtime");
    std::string &tasks =
        cli.flag("--tasks", "N", "task instances under --runtime", "20");
    std::string &induce_every =
        cli.flag("--induce-every", "N",
                 "flush caches/predictors every Nth task", "0");
    std::string &deadline =
        cli.flag("--deadline", "tight|loose|min|SECONDS",
                 "per-task deadline under --runtime", "tight");
    std::string &taskset =
        cli.flag("--taskset", "SET",
                 "multi-task schedule: a named set (duo trio mixed "
                 "clab6) or wl[:scale],wl[:scale],...");
    std::string &policy =
        cli.flag("--policy", "edf|rm|pedf|gedf",
                 "dispatching policy (pedf/gedf: partitioned/global "
                 "EDF over --cores)",
                 "edf");
    std::string &governor =
        cli.flag("--governor", "pertask|max", "DVS governor policy",
                 "pertask");
    std::string &jobs =
        cli.flag("--jobs", "N", "jobs per task under --taskset", "20");
    std::string &util =
        cli.flag("--util", "U",
                 "target core utilization for the derived periods",
                 "0.6");
    std::string &force_miss =
        cli.flag("--force-miss", "TASK[:EVERY]",
                 "force a watchdog expiry on the named task's jobs "
                 "(every Nth, default every job)");
    std::string &switch_cycles =
        cli.flag("--switch-cycles", "N",
                 "modeled context-switch cost, cycles", "500");
    std::string &quantum =
        cli.flag("--quantum", "N", "scheduler slice budget, cycles",
                 "20000");
    std::string &profile_json =
        cli.flag("--profile-json", "FILE",
                 "block-granular execution profile JSON ('-' = stdout)");
    std::string &prof_counters =
        cli.flag("--prof-counters", "FILE",
                 "Perfetto counter tracks of checkpoint slack/AET");
    std::string &cores = addCoresFlag(cli);
    std::string &affinity = addAffinityFlag(cli);
    TraceFlags trace{cli};
    std::string &stats_json = addStatsJsonFlag(cli);
    std::string &threads = addThreadsFlag(cli);
    bool &no_block_cache = addNoBlockCacheFlag(cli);
    std::string &debug = addDebugFlag(cli);
};

/** True when either profiling output was requested. */
bool
wantProfile(const Options &o)
{
    return !o.profile_json.empty() || !o.prof_counters.empty();
}

/** Export the collected profile to the files the flags name. */
void
writeProfileOutputs(const Options &o, const prof::BlockProfiler &prof)
{
    if (!o.profile_json.empty())
        withOutputStream(o.profile_json, [&](std::ostream &os) {
            prof.writeJson(os);
        });
    if (!o.prof_counters.empty())
        withOutputStream(o.prof_counters, [&](std::ostream &os) {
            prof.writeChromeCounters(os);
        });
}

/** Deadline/budget selector shared by --runtime and --taskset. */
double
resolveDeadline(const bench::ExperimentSetup &setup,
                const std::string &spec)
{
    if (spec == "tight")
        return setup.tightDeadline;
    if (spec == "loose")
        return setup.looseDeadline;
    if (spec == "min")
        // Near-zero residual slack (the Fig. 4 regime): induced
        // cache/predictor flushes actually miss checkpoints here.
        return 1.02 * setup.minDeadline;
    return std::stod(spec);
}

/** Periodic execution under the VISA run-time system (fig3/fig4 style). */
int
runUnderRuntime(const Options &o)
{
    if (o.workload.empty())
        fatal("--runtime requires --workload (the run-time system needs "
              "the WCET analysis of a known benchmark)");
    if (o.runtime != "visa" && o.runtime != "simple")
        fatal("--runtime must be 'visa' or 'simple', not '%s'",
              o.runtime.c_str());

    const bench::ExperimentSetup &setup = bench::cachedSetup(o.workload);
    const double deadline = resolveDeadline(setup, o.deadline);
    const int num_tasks = std::stoi(o.tasks);
    const int induce_every = std::stoi(o.induce_every);

    auto sim = SimBuilder()
                   .program(setup.wl.program)
                   .runtime(o.runtime == "visa" ? RuntimeKind::Visa
                                                : RuntimeKind::SimpleFixed,
                            *setup.wcet, setup.dvs,
                            setup.runtimeConfig(deadline))
                   .build();
    DvsRuntime &rt = sim->runtime();

    std::unique_ptr<Tracer> tracer = o.trace.makeTracer();
    std::unique_ptr<ScopedTracer> scope;
    if (tracer)
        scope = std::make_unique<ScopedTracer>(*tracer);

    std::unique_ptr<prof::BlockProfiler> profiler;
    std::unique_ptr<prof::ScopedProfiler> pscope;
    if (wantProfile(o)) {
        profiler = std::make_unique<prof::BlockProfiler>(sim->program());
        pscope = std::make_unique<prof::ScopedProfiler>(*profiler);
    }

    int misses = 0, deadline_misses = 0, bad_checksums = 0;
    for (int t = 0; t < num_tasks; ++t) {
        bool induce = induce_every > 0 && t > 0 && t % induce_every == 0;
        TaskStats ts = rt.runTask(induce);
        if (ts.missedCheckpoint)
            ++misses;
        if (!ts.deadlineMet)
            ++deadline_misses;
        if (ts.checksumReported &&
            ts.checksum != setup.wl.expectedChecksum)
            ++bad_checksums;
    }

    pscope.reset();    // uninstall before reporting
    if (profiler) {
        // Bound-side inputs for the slack report: per-sub-task WCETs
        // at every DVS operating point, and the analyzer's worst-case
        // path broken into charges at the top setting.
        for (const DvsSetting &s : setup.dvs.settings()) {
            std::vector<std::uint64_t> bounds;
            for (int k = 0; k < setup.wcet->numSubtasks(); ++k)
                bounds.push_back(setup.wcet->subtaskCycles(k, s.freq));
            profiler->setWcetBound(s.freq, std::move(bounds));
        }
        const WcetAttribution attr =
            setup.analyzer->attribute(setup.dvs.maxFreq(), &setup.dmiss);
        std::vector<prof::SubtaskBound> sbounds;
        for (std::size_t k = 0; k < attr.subtaskCharges.size(); ++k) {
            prof::SubtaskBound b;
            b.subtask = static_cast<int>(k) + 1;
            for (const WcetCharge &c : attr.subtaskCharges[k]) {
                prof::BoundCharge pc;
                pc.startPc = c.startPc;
                pc.endPc = c.endPc;
                pc.kind = wcetChargeKindName(c.kind);
                pc.count = c.count;
                pc.cycles = c.cycles;
                b.cycles += c.cycles;
                b.charges.push_back(std::move(pc));
            }
            sbounds.push_back(std::move(b));
        }
        profiler->setBoundAttribution(std::move(sbounds));
    }

    StatSet stats;
    sim->cpu().buildStats(stats);
    rt.buildStats(stats);
    if (profiler)
        profiler->buildStats(stats);

    std::printf("ran %d tasks of '%s' under the %s runtime "
                "(deadline %.3g us): %d checkpoint misses, "
                "%d deadline misses, %d bad checksums\n",
                num_tasks, o.workload.c_str(), o.runtime.c_str(),
                deadline * 1e6, misses, deadline_misses, bad_checksums);

    if (o.do_stats) {
        std::ostringstream text;
        stats.dump(text);
        std::fputs(text.str().c_str(), stdout);
    }
    if (!o.stats_json.empty())
        withOutputStream(o.stats_json, [&](std::ostream &os) {
            stats.dumpJson(os);
        });
    if (tracer) {
        scope.reset();    // uninstall before writing
        o.trace.writeOutputs(*tracer);
    }
    if (profiler)
        writeProfileOutputs(o, *profiler);
    return deadline_misses == 0 && bad_checksums == 0 ? 0 : 1;
}

/** Preemptive multi-task schedule of a benchmark set. */
int
runTaskSet(const Options &o)
{
    SchedulerConfig cfg;
    if (!parseSchedPolicyEx(o.policy, cfg.policy, cfg.placement))
        fatal("--policy must be 'edf', 'rm', 'pedf' or 'gedf', not "
              "'%s'",
              o.policy.c_str());
    cfg.cores = parseCoresFlag(o.cores);
    cfg.affinity = parseAffinityFlag(o.affinity);
    validateAffinity(cfg.affinity, cfg.cores);
    if (!parseGovernorPolicy(o.governor, cfg.governor))
        fatal("--governor must be 'pertask' or 'max', not '%s'",
              o.governor.c_str());
    cfg.contextSwitchCycles =
        static_cast<Cycles>(std::stoull(o.switch_cycles));
    cfg.quantumCycles = static_cast<Cycles>(std::stoull(o.quantum));

    std::string force_task;
    int force_every = 1;
    if (!o.force_miss.empty()) {
        force_task = o.force_miss;
        if (std::size_t colon = force_task.find(':');
            colon != std::string::npos) {
            force_every = std::stoi(force_task.substr(colon + 1));
            force_task = force_task.substr(0, colon);
        }
        if (force_every < 1)
            fatal("--force-miss: EVERY must be at least 1");
    }

    const std::vector<TaskSetMemberSpec> members =
        parseTaskSet(o.taskset);
    std::vector<SchedTaskDef> defs =
        bench::makeTaskSetDefs(members, std::stod(o.util));
    bool force_matched = force_task.empty();
    for (SchedTaskDef &d : defs) {
        if (d.name == force_task) {
            d.forceMissEvery = force_every;
            force_matched = true;
        }
    }
    if (!force_matched)
        fatal("--force-miss: no task named '%s' in the set",
              force_task.c_str());

    MultiTaskScheduler sched(cfg);
    for (const SchedTaskDef &d : defs)
        sched.addTask(d);
    if (std::string err = sched.admissionError(); !err.empty())
        fatal("task set rejected: %s", err.c_str());

    std::unique_ptr<Tracer> tracer = o.trace.makeTracer();
    std::unique_ptr<ScopedTracer> scope;
    if (tracer)
        scope = std::make_unique<ScopedTracer>(*tracer);

    const ScheduleOutcome out = sched.run(std::stoi(o.jobs));

    if (cfg.cores > 1)
        std::printf("scheduled %d tasks on %d cores (%s %s, governor "
                    "%s) for %d jobs each: %.3f ms wall, %d "
                    "preemptions, %d deadline misses, %d checkpoint "
                    "misses\n",
                    sched.numTasks(), cfg.cores,
                    placementName(cfg.placement),
                    schedPolicyName(cfg.policy),
                    governorPolicyName(cfg.governor), std::stoi(o.jobs),
                    out.wallSeconds * 1e3, out.preemptions,
                    out.deadlineMisses, out.checkpointMisses);
    else
        std::printf("scheduled %d tasks (%s, governor %s) for %d jobs "
                    "each: %.3f ms wall, %d preemptions, %d deadline "
                    "misses, %d checkpoint misses\n",
                    sched.numTasks(), schedPolicyName(cfg.policy),
                    governorPolicyName(cfg.governor), std::stoi(o.jobs),
                    out.wallSeconds * 1e3, out.preemptions,
                    out.deadlineMisses, out.checkpointMisses);
    int bad_checksums = 0;
    for (int i = 0; i < sched.numTasks(); ++i) {
        const SchedTaskStats &st = sched.taskStats(i);
        bad_checksums += st.badChecksums;
        std::printf("  %-10s B=%.3g us T=%.3g us: %d jobs, %d deadline "
                    "misses, %d recoveries, %d preemptions, min slack "
                    "%.3g us\n",
                    sched.taskDef(i).name.c_str(),
                    sched.taskDef(i).runtime.deadlineSeconds * 1e6,
                    sched.taskDef(i).periodSeconds * 1e6, st.jobs,
                    st.deadlineMisses, st.checkpointMisses,
                    st.preemptions, st.minSlackSeconds * 1e6);
    }
    if (cfg.cores > 1 && cfg.placement == PlacementPolicy::Partitioned) {
        std::printf("  placement:");
        for (int i = 0; i < sched.numTasks(); ++i)
            std::printf(" %s->c%d", sched.taskDef(i).name.c_str(),
                        sched.assignment()[static_cast<std::size_t>(i)]);
        std::printf("\n");
    }

    StatSet stats;
    sched.buildStats(stats);
    if (o.do_stats) {
        std::ostringstream text;
        stats.dump(text);
        std::fputs(text.str().c_str(), stdout);
    }
    if (!o.stats_json.empty())
        withOutputStream(o.stats_json, [&](std::ostream &os) {
            stats.dumpJson(os);
        });
    if (tracer) {
        scope.reset();
        o.trace.writeOutputs(*tracer);
    }
    return out.deadlineMisses == 0 && bad_checksums == 0 ? 0 : 1;
}

/** Single free run of one program on one pipeline (the classic mode). */
int
runOnce(const Options &o, Program prog)
{
    CpuKind kind;
    if (o.cpu_kind == "simple")
        kind = CpuKind::Simple;
    else if (o.cpu_kind == "complex")
        kind = CpuKind::Complex;
    else if (o.cpu_kind == "simple-mode")
        kind = CpuKind::ComplexSimpleMode;
    else
        fatal("unknown --cpu '%s'", o.cpu_kind.c_str());
    const MHz freq = static_cast<MHz>(std::stoul(o.freq));
    const int cores = parseCoresFlag(o.cores);

    if (cores > 1) {
        // Free-run the whole chip: every core executes the program on
        // its complex pipeline, contending on the shared bus + L2.
        if (kind != CpuKind::Complex)
            fatal("--cores %d: the multi-core free run uses the "
                  "complex pipeline (--cpu complex)",
                  cores);
        auto chip = SimBuilder()
                        .program(std::move(prog))
                        .cpu(kind)
                        .frequency(freq)
                        .cores(cores)
                        .buildChip();
        const chip::Chip::RunAllResult res =
            chip->runAll(20'000'000'000ULL);
        if (!res.allHalted)
            fatal("a core did not halt within the cycle budget");
        std::printf("\nran on %d cores @ %u MHz: %llu instructions "
                    "total\n",
                    cores, freq,
                    static_cast<unsigned long long>(res.retired));
        for (int c = 0; c < chip->numCores(); ++c) {
            OooCpu &cpu = chip->core(c).ooo();
            std::printf("  core %d: %llu cycles, %llu instructions "
                        "(IPC %.2f)\n",
                        c,
                        static_cast<unsigned long long>(cpu.cycles()),
                        static_cast<unsigned long long>(cpu.retired()),
                        static_cast<double>(cpu.retired()) /
                            static_cast<double>(cpu.cycles()));
        }
        StatSet stats;
        chip->buildStats(stats);
        if (o.do_stats) {
            std::ostringstream os;
            stats.dump(os);
            std::fputs(os.str().c_str(), stdout);
        }
        if (!o.stats_json.empty())
            withOutputStream(o.stats_json, [&](std::ostream &os) {
                stats.dumpJson(os);
            });
        return 0;
    }

    auto sim = SimBuilder()
                   .program(std::move(prog))
                   .cpu(kind)
                   .frequency(freq)
                   .build();
    Cpu &cpu = sim->cpu();

    std::unique_ptr<Tracer> tracer = o.trace.makeTracer();
    std::unique_ptr<prof::BlockProfiler> profiler;
    if (wantProfile(o))
        profiler = std::make_unique<prof::BlockProfiler>(sim->program());
    RunResult res;
    {
        std::unique_ptr<ScopedTracer> scope;
        if (tracer)
            scope = std::make_unique<ScopedTracer>(*tracer);
        std::unique_ptr<prof::ScopedProfiler> pscope;
        if (profiler)
            pscope = std::make_unique<prof::ScopedProfiler>(*profiler);
        res = cpu.run(20'000'000'000ULL);
    }
    if (res.reason != StopReason::Halted)
        fatal("program did not halt (budget/watchdog)");

    std::printf("\nran on %s @ %u MHz: %llu cycles, %llu "
                "instructions (IPC %.2f, %.2f us)\n",
                o.cpu_kind.c_str(), freq,
                static_cast<unsigned long long>(cpu.cycles()),
                static_cast<unsigned long long>(cpu.retired()),
                static_cast<double>(cpu.retired()) /
                    static_cast<double>(cpu.cycles()),
                static_cast<double>(cpu.cycles()) / freq);
    if (sim->platform().checksumReported())
        std::printf("checksum: 0x%x\n", sim->platform().lastChecksum());
    if (!sim->platform().consoleOutput().empty())
        std::printf("console: %s\n",
                    sim->platform().consoleOutput().c_str());
    if (o.do_stats) {
        std::printf("\n");
        std::ostringstream os;
        cpu.dumpStats(os);
        std::fputs(os.str().c_str(), stdout);
    }
    if (!o.stats_json.empty())
        withOutputStream(o.stats_json, [&](std::ostream &os) {
            cpu.dumpStatsJson(os);
        });
    if (tracer)
        o.trace.writeOutputs(*tracer);
    if (profiler)
        writeProfileOutputs(o, *profiler);
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    try {
        Options o;
        o.cli.parse(argc, argv);
        applyDebugFlag(o.debug);
        applyThreadsFlag(o.threads);
        // Must precede rig construction: each ExecCore latches the
        // default when built.
        if (o.no_block_cache)
            ExecCore::setBlockCacheDefault(false);
        const std::string &path = o.cli.positional();

        if (!o.taskset.empty())
            return runTaskSet(o);
        if (path.empty() && o.workload.empty()) {
            o.cli.printUsage(stderr);
            return 2;
        }
        if (!path.empty() && !o.workload.empty())
            fatal("give either a source file or --workload, not both");

        if (!o.runtime.empty())
            return runUnderRuntime(o);

        Program prog;
        if (!o.workload.empty()) {
            Workload wl = makeWorkload(o.workload);
            prog = std::move(wl.program);
            std::printf("workload '%s': %zu instructions "
                        "(%zu sub-task markers)\n",
                        o.workload.c_str(), prog.size(),
                        prog.subtaskStarts.size());
        } else {
            prog = assemble(readFile(path));
            std::printf("assembled %zu instructions (%zu sub-task "
                        "markers, %zu loop bounds)\n",
                        prog.size(), prog.subtaskStarts.size(),
                        prog.loopBounds.size());
        }

        if (o.do_disasm) {
            DisasmOptions opts;
            opts.showEncodings = o.show_encodings;
            std::fputs(disassembleProgram(prog, opts).c_str(), stdout);
        }

        if (o.do_wcet) {
            WcetAnalyzer analyzer(prog);
            DMissProfile dmiss = profileDataMisses(prog);
            std::printf("\nstatic WCET (trace-padded D-cache):\n");
            for (MHz f : {100u, 250u, 500u, 750u, 1000u}) {
                WcetReport rep = analyzer.analyze(f, &dmiss);
                std::printf("  %4u MHz: %10llu cycles  (%.2f us)\n", f,
                            static_cast<unsigned long long>(
                                rep.taskCycles),
                            rep.taskMicros());
            }
        }

        return runOnce(o, std::move(prog));
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
