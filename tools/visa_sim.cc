/**
 * @file
 * visa-sim: the command-line driver. Assembles a VPISA source file (or
 * builds a named C-lab workload) and runs it on either pipeline, under
 * the VISA run-time system if requested, with structured event tracing
 * and JSON statistics export.
 *
 *   visa-sim program.s                      run on simple-fixed
 *   visa-sim --cpu complex program.s        run on the OOO pipeline
 *   visa-sim --cpu simple-mode program.s    OOO pipeline, simple mode
 *   visa-sim --freq 250 program.s           clock in MHz (default 1000)
 *   visa-sim --wcet program.s               static analysis across DVS
 *   visa-sim --disasm program.s             annotated disassembly
 *   visa-sim --stats program.s              dump simulation statistics
 *   visa-sim --workload fft ...             built-in benchmark instead
 *                                           of a source file
 *   visa-sim --runtime visa --workload fft --tasks 20
 *                                           periodic execution under the
 *                                           VISA run-time system
 *   visa-sim --trace out.json ...           Chrome/Perfetto event trace
 *   visa-sim --trace-jsonl out.jsonl ...    flat JSONL event trace
 *   visa-sim --stats-json stats.json ...    hierarchical JSON stats
 *   visa-sim --debug help                   list debug/trace flags
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "bench/bench_util.hh"
#include "core/runtime.hh"
#include "cpu/ooo_cpu.hh"
#include "cpu/simple_cpu.hh"
#include "isa/assembler.hh"
#include "isa/disassembler.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"
#include "wcet/analyzer.hh"
#include "workloads/clab.hh"

using namespace visa;

namespace
{

void
usage()
{
    std::fprintf(
        stderr,
        "usage: visa-sim [--cpu simple|complex|simple-mode] [--freq MHz]\n"
        "                [--wcet] [--disasm] [--stats] [--encodings]\n"
        "                [--workload NAME] [--runtime visa|simple]\n"
        "                [--tasks N] [--induce-every N]\n"
        "                [--deadline tight|loose|min|SECONDS]\n"
        "                [--trace FILE] [--trace-jsonl FILE]\n"
        "                [--trace-events cat,cat] [--trace-buffer N]\n"
        "                [--stats-json FILE]\n"
        "                [--debug help|flag,flag] [program.s]\n");
}

void
listDebugFlags(std::FILE *out)
{
    std::fprintf(out, "debug flags (--debug flag[,flag...]):\n");
    for (const auto &f : Debug::knownFlags())
        std::fprintf(out, "  %-10s %s\n", f.name, f.desc);
    std::fprintf(out,
                 "trace event categories (--trace-events cat[,cat...]):\n"
                 "  all task checkpoint mode dvs cpu mem\n");
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '%s'", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Open @p path for writing ("-" = stdout) and pass the stream on. */
template <typename Fn>
void
withOutput(const std::string &path, Fn &&fn)
{
    if (path == "-") {
        fn(std::cout);
        return;
    }
    std::ofstream out(path);
    if (!out)
        fatal("cannot write '%s'", path.c_str());
    fn(out);
}

struct Options
{
    std::string cpu_kind = "simple";
    MHz freq = 1000;
    bool do_wcet = false;
    bool do_disasm = false;
    bool do_stats = false;
    bool show_encodings = false;
    std::string workload;
    std::string runtime;          ///< "", "visa", "simple"
    int tasks = 20;
    int induce_every = 0;         ///< flush caches every Nth task
    std::string deadline = "tight";
    std::string trace_path;       ///< Chrome trace-event JSON
    std::string trace_jsonl_path;
    std::string trace_events;     ///< category filter
    std::size_t trace_buffer = 1u << 18;
    std::string stats_json_path;
    std::string path;
};

Options
parseArgs(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--cpu") {
            o.cpu_kind = next();
        } else if (arg == "--freq") {
            o.freq = static_cast<MHz>(std::stoul(next()));
        } else if (arg == "--wcet") {
            o.do_wcet = true;
        } else if (arg == "--disasm") {
            o.do_disasm = true;
        } else if (arg == "--stats") {
            o.do_stats = true;
        } else if (arg == "--encodings") {
            o.show_encodings = true;
        } else if (arg == "--workload") {
            o.workload = next();
        } else if (arg == "--runtime") {
            o.runtime = next();
            if (o.runtime != "visa" && o.runtime != "simple")
                fatal("--runtime must be 'visa' or 'simple', not '%s'",
                      o.runtime.c_str());
        } else if (arg == "--tasks") {
            o.tasks = std::stoi(next());
        } else if (arg == "--induce-every") {
            o.induce_every = std::stoi(next());
        } else if (arg == "--deadline") {
            o.deadline = next();
        } else if (arg == "--trace") {
            o.trace_path = next();
        } else if (arg == "--trace-jsonl") {
            o.trace_jsonl_path = next();
        } else if (arg == "--trace-events") {
            o.trace_events = next();
        } else if (arg == "--trace-buffer") {
            o.trace_buffer = std::stoul(next());
        } else if (arg == "--stats-json") {
            o.stats_json_path = next();
        } else if (arg == "--debug") {
            std::string value = next();
            if (value == "help" || value == "list") {
                listDebugFlags(stdout);
                std::exit(0);
            }
            std::istringstream flags(value);
            std::string flag;
            while (std::getline(flags, flag, ',')) {
                if (!Debug::isKnown(flag)) {
                    listDebugFlags(stderr);
                    fatal("unknown debug flag '%s' (see the list above)",
                          flag.c_str());
                }
                Debug::enable(flag);
            }
        } else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
            fatal("unknown option '%s'", arg.c_str());
        } else {
            o.path = arg;
        }
    }
    return o;
}

/** Build the tracer requested on the command line, or nullptr. */
std::unique_ptr<Tracer>
makeTracer(const Options &o)
{
    if (o.trace_path.empty() && o.trace_jsonl_path.empty())
        return nullptr;
    auto tracer = std::make_unique<Tracer>(o.trace_buffer);
    if (!o.trace_events.empty()) {
        std::uint32_t mask = 0;
        std::istringstream cats(o.trace_events);
        std::string cat;
        while (std::getline(cats, cat, ',')) {
            std::uint32_t m = Tracer::maskFor(cat);
            if (m == 0)
                fatal("unknown trace event category '%s' (categories: "
                      "all task checkpoint mode dvs cpu mem)",
                      cat.c_str());
            mask |= m;
        }
        tracer->setKindMask(mask);
    }
    return tracer;
}

void
writeTraceOutputs(const Options &o, const Tracer &tracer)
{
    if (!o.trace_jsonl_path.empty())
        withOutput(o.trace_jsonl_path,
                   [&](std::ostream &os) { tracer.writeJsonl(os); });
    if (!o.trace_path.empty())
        withOutput(o.trace_path,
                   [&](std::ostream &os) { tracer.writeChromeTrace(os); });
    if (tracer.dropped())
        warn("trace ring overflowed: %llu events dropped (raise "
             "--trace-buffer)",
             static_cast<unsigned long long>(tracer.dropped()));
}

/** Periodic execution under the VISA run-time system (fig3/fig4 style). */
int
runUnderRuntime(const Options &o)
{
    if (o.workload.empty())
        fatal("--runtime requires --workload (the run-time system needs "
              "the WCET analysis of a known benchmark)");

    const bench::ExperimentSetup &setup = bench::cachedSetup(o.workload);
    double deadline;
    if (o.deadline == "tight")
        deadline = setup.tightDeadline;
    else if (o.deadline == "loose")
        deadline = setup.looseDeadline;
    else if (o.deadline == "min")
        // Near-zero residual slack (the Fig. 4 regime): induced
        // cache/predictor flushes actually miss checkpoints here.
        deadline = 1.02 * setup.minDeadline;
    else
        deadline = std::stod(o.deadline);
    RuntimeConfig cfg = setup.runtimeConfig(deadline);

    std::unique_ptr<Tracer> tracer = makeTracer(o);
    std::unique_ptr<ScopedTracer> scope;
    if (tracer)
        scope = std::make_unique<ScopedTracer>(*tracer);

    int misses = 0, deadline_misses = 0, bad_checksums = 0;
    std::string stats_text, stats_json;

    // The stats formulas capture the rig and runtime, so the set must
    // be rendered before they go out of scope.
    auto campaign = [&](auto &rig, DvsRuntime &rt) {
        for (int t = 0; t < o.tasks; ++t) {
            bool induce =
                o.induce_every > 0 && t > 0 && t % o.induce_every == 0;
            TaskStats ts = rt.runTask(induce);
            if (ts.missedCheckpoint)
                ++misses;
            if (!ts.deadlineMet)
                ++deadline_misses;
            if (ts.checksumReported &&
                ts.checksum != setup.wl.expectedChecksum)
                ++bad_checksums;
        }
        StatSet stats;
        rig.cpu->buildStats(stats);
        rt.buildStats(stats);
        std::ostringstream text, json;
        stats.dump(text);
        stats.dumpJson(json);
        stats_text = text.str();
        stats_json = json.str();
    };

    if (o.runtime == "visa") {
        bench::Rig<OooCpu> rig(setup.wl.program);
        VisaComplexRuntime rt(*rig.cpu, setup.wl.program, rig.mem,
                              *setup.wcet, setup.dvs, cfg);
        campaign(rig, rt);
    } else {
        bench::Rig<SimpleCpu> rig(setup.wl.program);
        SimpleFixedRuntime rt(*rig.cpu, setup.wl.program, rig.mem,
                              *setup.wcet, setup.dvs, cfg);
        campaign(rig, rt);
    }

    std::printf("ran %d tasks of '%s' under the %s runtime "
                "(deadline %.3g us): %d checkpoint misses, "
                "%d deadline misses, %d bad checksums\n",
                o.tasks, o.workload.c_str(), o.runtime.c_str(),
                deadline * 1e6, misses, deadline_misses, bad_checksums);

    if (o.do_stats)
        std::fputs(stats_text.c_str(), stdout);
    if (!o.stats_json_path.empty())
        withOutput(o.stats_json_path,
                   [&](std::ostream &os) { os << stats_json; });
    if (tracer) {
        scope.reset();    // uninstall before writing
        writeTraceOutputs(o, *tracer);
    }
    return deadline_misses == 0 && bad_checksums == 0 ? 0 : 1;
}

/** Single free run of one program on one pipeline (the classic mode). */
int
runOnce(const Options &o, const Program &prog)
{
    MainMemory mem;
    Platform platform;
    MemController memctrl;
    mem.loadProgram(prog);
    std::unique_ptr<Cpu> cpu;
    if (o.cpu_kind == "simple") {
        cpu = std::make_unique<SimpleCpu>(prog, mem, platform, memctrl);
    } else if (o.cpu_kind == "complex" || o.cpu_kind == "simple-mode") {
        auto ooo = std::make_unique<OooCpu>(prog, mem, platform, memctrl);
        if (o.cpu_kind == "simple-mode")
            ooo->switchToSimple();
        cpu = std::move(ooo);
    } else {
        fatal("unknown --cpu '%s'", o.cpu_kind.c_str());
    }
    cpu->resetForTask();
    cpu->setFrequency(o.freq);

    std::unique_ptr<Tracer> tracer = makeTracer(o);
    RunResult res;
    {
        std::unique_ptr<ScopedTracer> scope;
        if (tracer)
            scope = std::make_unique<ScopedTracer>(*tracer);
        res = cpu->run(20'000'000'000ULL);
    }
    if (res.reason != StopReason::Halted)
        fatal("program did not halt (budget/watchdog)");

    std::printf("\nran on %s @ %u MHz: %llu cycles, %llu "
                "instructions (IPC %.2f, %.2f us)\n",
                o.cpu_kind.c_str(), o.freq,
                static_cast<unsigned long long>(cpu->cycles()),
                static_cast<unsigned long long>(cpu->retired()),
                static_cast<double>(cpu->retired()) /
                    static_cast<double>(cpu->cycles()),
                static_cast<double>(cpu->cycles()) / o.freq);
    if (platform.checksumReported())
        std::printf("checksum: 0x%x\n", platform.lastChecksum());
    if (!platform.consoleOutput().empty())
        std::printf("console: %s\n", platform.consoleOutput().c_str());
    if (o.do_stats) {
        std::printf("\n");
        std::ostringstream os;
        cpu->dumpStats(os);
        std::fputs(os.str().c_str(), stdout);
    }
    if (!o.stats_json_path.empty())
        withOutput(o.stats_json_path,
                   [&](std::ostream &os) { cpu->dumpStatsJson(os); });
    if (tracer)
        writeTraceOutputs(o, *tracer);
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    try {
        Options o = parseArgs(argc, argv);
        if (o.path.empty() && o.workload.empty()) {
            usage();
            return 2;
        }
        if (!o.path.empty() && !o.workload.empty())
            fatal("give either a source file or --workload, not both");

        if (!o.runtime.empty())
            return runUnderRuntime(o);

        Program prog;
        if (!o.workload.empty()) {
            Workload wl = makeWorkload(o.workload);
            prog = std::move(wl.program);
            std::printf("workload '%s': %zu instructions "
                        "(%zu sub-task markers)\n",
                        o.workload.c_str(), prog.size(),
                        prog.subtaskStarts.size());
        } else {
            prog = assemble(readFile(o.path));
            std::printf("assembled %zu instructions (%zu sub-task "
                        "markers, %zu loop bounds)\n",
                        prog.size(), prog.subtaskStarts.size(),
                        prog.loopBounds.size());
        }

        if (o.do_disasm) {
            DisasmOptions opts;
            opts.showEncodings = o.show_encodings;
            std::fputs(disassembleProgram(prog, opts).c_str(), stdout);
        }

        if (o.do_wcet) {
            WcetAnalyzer analyzer(prog);
            DMissProfile dmiss = profileDataMisses(prog);
            std::printf("\nstatic WCET (trace-padded D-cache):\n");
            for (MHz f : {100u, 250u, 500u, 750u, 1000u}) {
                WcetReport rep = analyzer.analyze(f, &dmiss);
                std::printf("  %4u MHz: %10llu cycles  (%.2f us)\n", f,
                            static_cast<unsigned long long>(
                                rep.taskCycles),
                            rep.taskMicros());
            }
        }

        return runOnce(o, prog);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
